// Package specialize implements profile-guided code specialization, the
// thesis's Chapter X payoff: given a procedure and a semi-invariant
// register value discovered by value profiling, it clones the
// procedure, constant-propagates the value through the clone, folds
// instructions and resolves branches, removes dead code, and installs a
// guarded dispatch stub so calls run the specialized body whenever the
// profiled value recurs ("there will be one general version of the
// code, and a special version ... a selection mechanism based on the
// invariant variable will choose which code to execute").
package specialize

import (
	"valueprof/internal/isa"
)

// regFacts maps register -> known constant value.
type regFacts map[uint8]int64

// facts is the constant-propagation lattice element: known register
// values plus known fp-relative stack slots. Slot tracking is what lets
// specialization see through the compiler's argument spills
// (stq a0, 16(fp) ... ldq t0, 16(fp)).
type facts struct {
	regs  regFacts
	slots map[int32]int64
}

func newFacts() *facts {
	return &facts{regs: make(regFacts), slots: make(map[int32]int64)}
}

func (f *facts) clone() *facts {
	out := newFacts()
	for k, v := range f.regs {
		out.regs[k] = v
	}
	for k, v := range f.slots {
		out.slots[k] = v
	}
	return out
}

// meet intersects two fact sets (same key, same value survives).
func meet(a, b *facts) *facts {
	out := newFacts()
	for k, v := range a.regs {
		if bv, ok := b.regs[k]; ok && bv == v {
			out.regs[k] = v
		}
	}
	for k, v := range a.slots {
		if bv, ok := b.slots[k]; ok && bv == v {
			out.slots[k] = v
		}
	}
	return out
}

func equalFacts(a, b *facts) bool {
	if len(a.regs) != len(b.regs) || len(a.slots) != len(b.slots) {
		return false
	}
	for k, v := range a.regs {
		if bv, ok := b.regs[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.slots {
		if bv, ok := b.slots[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func (f *facts) reg(r uint8) (int64, bool) {
	if r == isa.RegZero {
		return 0, true
	}
	v, ok := f.regs[r]
	return v, ok
}

func (f *facts) setReg(r uint8, v int64) {
	if r != isa.RegZero {
		f.regs[r] = v
	}
}

func (f *facts) killReg(r uint8) {
	delete(f.regs, r)
	if r == isa.RegFP {
		// fp changed: every fp-relative slot fact is stale.
		f.slots = make(map[int32]int64)
	}
}

func (f *facts) killAllSlots() { f.slots = make(map[int32]int64) }

// callerSaved are the registers a call clobbers under the VRISC
// convention (temporaries, arguments, v0, ra, at).
var callerSaved = func() []uint8 {
	var r []uint8
	r = append(r, isa.RegV0, isa.RegRA, isa.RegAT)
	for i := isa.RegA0; i <= isa.RegA5; i++ {
		r = append(r, uint8(i))
	}
	for i := isa.RegT0; i < isa.RegT0+10; i++ {
		r = append(r, uint8(i))
	}
	return r
}()

// evalValue computes the constant result of in under f when every
// needed input is known. It handles pure ALU/compare ops and 64-bit
// loads from known fp slots; ok is false otherwise.
func evalValue(in isa.Inst, f *facts) (val int64, ok bool) {
	a, aok := f.reg(in.Ra)
	b, bok := f.reg(in.Rb)
	imm := int64(in.Imm)
	switch in.Op {
	case isa.OpAdd:
		return a + b, aok && bok
	case isa.OpSub:
		return a - b, aok && bok
	case isa.OpMul:
		return a * b, aok && bok
	case isa.OpDiv:
		if !aok || !bok || b == 0 {
			return 0, false // preserve the fault
		}
		return a / b, true
	case isa.OpRem:
		if !aok || !bok || b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.OpAddi:
		return a + imm, aok
	case isa.OpMuli:
		return a * imm, aok
	case isa.OpAnd:
		return a & b, aok && bok
	case isa.OpOr:
		return a | b, aok && bok
	case isa.OpXor:
		return a ^ b, aok && bok
	case isa.OpAndi:
		return a & imm, aok
	case isa.OpOri:
		return a | imm, aok
	case isa.OpXori:
		return a ^ imm, aok
	case isa.OpSll:
		return a << (uint64(b) & 63), aok && bok
	case isa.OpSrl:
		return int64(uint64(a) >> (uint64(b) & 63)), aok && bok
	case isa.OpSra:
		return a >> (uint64(b) & 63), aok && bok
	case isa.OpSlli:
		return a << (uint32(in.Imm) & 63), aok
	case isa.OpSrli:
		return int64(uint64(a) >> (uint32(in.Imm) & 63)), aok
	case isa.OpSrai:
		return a >> (uint32(in.Imm) & 63), aok
	case isa.OpCmpeq:
		return b2i(a == b), aok && bok
	case isa.OpCmpne:
		return b2i(a != b), aok && bok
	case isa.OpCmplt:
		return b2i(a < b), aok && bok
	case isa.OpCmple:
		return b2i(a <= b), aok && bok
	case isa.OpCmpgt:
		return b2i(a > b), aok && bok
	case isa.OpCmpge:
		return b2i(a >= b), aok && bok
	case isa.OpCmplti:
		return b2i(a < imm), aok
	case isa.OpCmpeqi:
		return b2i(a == imm), aok
	case isa.OpLdq:
		if in.Ra == isa.RegFP {
			v, known := f.slots[in.Imm]
			return v, known
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// applyTransfer updates facts across in: known pure results record the
// constant; anything else kills the destination. Stores update or kill
// slot facts; calls kill caller-saved registers and all memory facts
// (the callee may write through passed addresses).
func applyTransfer(in isa.Inst, f *facts) {
	switch in.Op {
	case isa.OpJsr, isa.OpJsrr:
		for _, r := range callerSaved {
			delete(f.regs, r)
		}
		f.killAllSlots()
		return
	case isa.OpSyscall:
		// Syscalls write v0 (getint/clock) but no program memory.
		f.killReg(isa.RegV0)
		return
	case isa.OpStq, isa.OpStl, isa.OpStb:
		if in.Ra == isa.RegFP && in.Op == isa.OpStq {
			if v, ok := f.reg(in.Rd); ok {
				f.slots[in.Imm] = v
			} else {
				delete(f.slots, in.Imm)
			}
			return
		}
		if in.Ra == isa.RegFP {
			// Narrow store to a tracked slot: forget it.
			delete(f.slots, in.Imm)
			return
		}
		// A store through an arbitrary pointer may alias the frame.
		f.killAllSlots()
		return
	}
	if !in.Op.HasDest() {
		return
	}
	if v, ok := evalValue(in, f); ok {
		f.killReg(in.Rd) // handles fp-redefinition slot invalidation
		f.setReg(in.Rd, v)
		return
	}
	f.killReg(in.Rd)
}
