package specialize

import (
	"valueprof/internal/analysis"
	"valueprof/internal/isa"
)

// immForm maps register-register opcodes to their immediate-operand
// counterparts for strength reduction when exactly one operand is a
// known constant.
var immForm = map[isa.Op]isa.Op{
	isa.OpAdd:   isa.OpAddi,
	isa.OpMul:   isa.OpMuli,
	isa.OpAnd:   isa.OpAndi,
	isa.OpOr:    isa.OpOri,
	isa.OpXor:   isa.OpXori,
	isa.OpSll:   isa.OpSlli,
	isa.OpSrl:   isa.OpSrli,
	isa.OpSra:   isa.OpSrai,
	isa.OpCmplt: isa.OpCmplti,
	isa.OpCmpeq: isa.OpCmpeqi,
}

// commutative marks the ops where a known LEFT operand can swap into
// the immediate slot.
var commutative = map[isa.Op]bool{
	isa.OpAdd: true, isa.OpMul: true, isa.OpAnd: true,
	isa.OpOr: true, isa.OpXor: true, isa.OpCmpeq: true,
}

// strengthReduce rewrites a register-register instruction with exactly
// one known operand into its immediate form, so the instruction that
// materialized the constant (often a frame-slot reload of the
// specialized argument) becomes dead. Returns ok=false when no
// reduction applies.
func strengthReduce(in isa.Inst, f *analysis.Facts) (isa.Inst, bool) {
	if in.Op.Form() != isa.FormRRR {
		return in, false
	}
	av, aok := f.Reg(in.Ra)
	bv, bok := f.Reg(in.Rb)
	// Exactly one side known (both known is the fold case, handled by
	// the caller; it can fail only for div-by-zero, which must stay).
	if aok == bok {
		return in, false
	}
	switch in.Op {
	case isa.OpSub:
		// x - known  →  addi x, -known.
		if bok && fitsImm(-bv) {
			return isa.Inst{Op: isa.OpAddi, Rd: in.Rd, Ra: in.Ra, Imm: int32(-bv)}, true
		}
		return in, false
	case isa.OpCmpgt:
		// x > known  ≡  known < x: no cmpgti form; skip (rare).
		return in, false
	}
	imm, ok := immForm[in.Op]
	if !ok {
		return in, false
	}
	if bok && fitsImm(bv) {
		// Shifts only use the low 6 bits; any immediate fits.
		return isa.Inst{Op: imm, Rd: in.Rd, Ra: in.Ra, Imm: int32(bv)}, true
	}
	if aok && commutative[in.Op] && fitsImm(av) {
		return isa.Inst{Op: imm, Rd: in.Rd, Ra: in.Rb, Imm: int32(av)}, true
	}
	return in, false
}
