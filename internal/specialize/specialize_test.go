package specialize

import (
	"strings"
	"testing"

	"valueprof/internal/analysis"
	"valueprof/internal/asm"
	"valueprof/internal/isa"
	"valueprof/internal/minic"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// calc(a0, a1) = ((a0*a0 + 3*a0) / (a0+1)) [+5 if a0 odd] + a1.
// With a0 == 7 everything up to the a1 addition folds away.
const calcSrc = `
        .proc main
main:   li s0, 1000
        li s1, 0
loop:   li a0, 7
        mov a1, s0
        jsr calc
        add s1, s1, v0
        andi a0, s0, 15
        mov a1, s0
        jsr calc
        add s1, s1, v0
        addi s0, s0, -1
        bne s0, loop
        mov a0, s1
        syscall putint
        syscall exit
        .endproc
        .proc calc
calc:   mul t0, a0, a0
        muli t1, a0, 3
        add t0, t0, t1
        addi t2, a0, 1
        div t0, t0, t2
        andi t3, a0, 1
        beq t3, even
        addi t0, t0, 5
even:   add v0, t0, a1
        ret
        .endproc
`

func mustProg(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runProg(t *testing.T, p *program.Program, input []int64) *vm.Result {
	t.Helper()
	res, err := vm.Execute(p, input)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p.Disassemble())
	}
	return res
}

func TestSpecializePreservesOutput(t *testing.T) {
	orig := mustProg(t, calcSrc)
	base := runProg(t, orig, nil)

	spec, info, err := Specialize(orig, "calc", isa.RegA0, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := runProg(t, spec, nil)
	if got.Output != base.Output {
		t.Fatalf("output changed: %q vs %q", got.Output, base.Output)
	}
	if got.ExitStatus != base.ExitStatus {
		t.Fatalf("exit status changed")
	}
	if info.Folded == 0 || info.Branches == 0 || info.Removed == 0 {
		t.Errorf("expected folding/branch/dce activity: %+v", info)
	}
	if info.SpecSize >= info.OrigSize {
		t.Errorf("specialized body not smaller: %d vs %d", info.SpecSize, info.OrigSize)
	}
	if got.Cycles >= base.Cycles {
		t.Errorf("no speedup: %d vs %d cycles", got.Cycles, base.Cycles)
	}
	t.Logf("cycles %d -> %d (%.1f%% saved); body %d -> %d insts",
		base.Cycles, got.Cycles, 100*float64(base.Cycles-got.Cycles)/float64(base.Cycles),
		info.OrigSize, info.SpecSize)
}

func TestSpecializedProcsRegistered(t *testing.T) {
	orig := mustProg(t, calcSrc)
	spec, info, err := Specialize(orig, "calc", isa.RegA0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if spec.ProcByName("calc$guard") == nil || spec.ProcByName("calc$spec") == nil {
		t.Error("guard/spec procedures not registered")
	}
	if spec.ProcByName("calc") == nil {
		t.Error("original procedure lost")
	}
	if info.StubStart+3 != info.SpecStart {
		t.Errorf("stub layout wrong: %+v", info)
	}
	// Original program must be untouched.
	if orig.ProcByName("calc$spec") != nil {
		t.Error("Specialize mutated its input")
	}
	for pc, in := range orig.Code {
		if in.Op == isa.OpJsr && int(in.Imm) >= len(orig.Code) {
			t.Errorf("original jsr at %d redirected", pc)
		}
	}
}

func TestGuardDispatchesBothWays(t *testing.T) {
	// All calls use a0=3 (guard always misses): output still correct.
	orig := mustProg(t, calcSrc)
	spec, _, err := Specialize(orig, "calc", isa.RegA0, 999)
	if err != nil {
		t.Fatal(err)
	}
	base := runProg(t, orig, nil)
	got := runProg(t, spec, nil)
	if got.Output != base.Output {
		t.Fatalf("guard-miss output changed: %q vs %q", got.Output, base.Output)
	}
	// Guard misses cost a little extra; no speedup expected.
	if got.Cycles < base.Cycles {
		t.Errorf("impossible speedup on guard misses")
	}
}

func TestSpecializeErrors(t *testing.T) {
	orig := mustProg(t, calcSrc)
	if _, _, err := Specialize(orig, "nosuch", isa.RegA0, 1); err == nil || !strings.Contains(err.Error(), "no procedure") {
		t.Errorf("missing proc: %v", err)
	}
	if _, _, err := Specialize(orig, "calc", isa.RegZero, 1); err == nil {
		t.Error("zero register accepted")
	}
	if _, _, err := Specialize(orig, "calc", isa.RegA0, 1<<40); err == nil {
		t.Error("oversized guard value accepted")
	}
}

func TestSpecializeRejectsIndirectJumps(t *testing.T) {
	src := `
        .proc main
main:   jsr f
        syscall exit
        .endproc
        .proc f
f:      li t0, g
        jmp t0
g:      ret
        .endproc
`
	p := mustProg(t, src)
	if _, _, err := Specialize(p, "f", isa.RegA0, 1); err == nil || !strings.Contains(err.Error(), "indirect jump") {
		t.Errorf("err = %v", err)
	}
}

// TestSpecializeMiniCProgram specializes a compiled MiniC function on a
// semi-invariant argument and checks end-to-end behaviour — the full
// Chapter X pipeline on compiler-generated code.
func TestSpecializeMiniCProgram(t *testing.T) {
	prog, err := minic.Compile(`
int acc;
func poly(x, y) {
    var r = x * x * x - 2 * x + 7;
    if (x > 100) { r = r / x; }
    return r + y;
}
func main() {
    var i;
    for (i = 0; i < 2000; i = i + 1) {
        acc = acc + poly(9, i);
        if (i % 50 == 0) { acc = acc + poly(i, 1); }
    }
    putint(acc);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	base, err := vm.Execute(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, info, err := Specialize(prog, "poly", isa.RegA0, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm.Execute(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != base.Output {
		t.Fatalf("output changed: %q vs %q", got.Output, base.Output)
	}
	if got.Cycles >= base.Cycles {
		t.Errorf("no speedup on MiniC program: %d vs %d", got.Cycles, base.Cycles)
	}
	if info.Folded == 0 {
		t.Errorf("nothing folded: %+v", info)
	}
	t.Logf("MiniC specialization: cycles %d -> %d, info %+v", base.Cycles, got.Cycles, info)
}

func TestConstpropMeet(t *testing.T) {
	a := analysis.NewFacts()
	a.SetReg(1, 5)
	a.SetReg(2, 6)
	a.Slots[16] = 9
	b := analysis.NewFacts()
	b.SetReg(1, 5)
	b.SetReg(2, 7)
	b.SetReg(3, 8)
	b.Slots[16] = 9
	b.Slots[24] = 1
	m := analysis.MeetFacts(a, b)
	if len(m.Regs) != 1 || m.Regs[1] != 5 {
		t.Errorf("meet regs = %v", m.Regs)
	}
	if len(m.Slots) != 1 || m.Slots[16] != 9 {
		t.Errorf("meet slots = %v", m.Slots)
	}
	want := analysis.NewFacts()
	want.SetReg(1, 5)
	want.Slots[16] = 9
	if !analysis.EqualFacts(m, want) || analysis.EqualFacts(a, b) {
		t.Error("equalFacts wrong")
	}
}

func TestEvalValueFaultPreservation(t *testing.T) {
	f := analysis.NewFacts()
	f.SetReg(1, 10)
	f.SetReg(2, 0)
	if _, ok := analysis.EvalValue(isa.Inst{Op: isa.OpDiv, Rd: 3, Ra: 1, Rb: 2}, f); ok {
		t.Error("division by known zero must not fold (fault preserved)")
	}
	if v, ok := analysis.EvalValue(isa.Inst{Op: isa.OpDiv, Rd: 3, Ra: 1, Rb: 1}, f); !ok || v != 1 {
		t.Errorf("div fold = %d,%v", v, ok)
	}
}

func TestSlotTracking(t *testing.T) {
	f := analysis.NewFacts()
	f.SetReg(isa.RegA0, 9)
	// Spill a0 to the frame, reload it: the load must fold.
	analysis.ApplyTransfer(isa.Inst{Op: isa.OpStq, Rd: isa.RegA0, Ra: isa.RegFP, Imm: 16}, f)
	if v, ok := analysis.EvalValue(isa.Inst{Op: isa.OpLdq, Rd: isa.RegT0, Ra: isa.RegFP, Imm: 16}, f); !ok || v != 9 {
		t.Fatalf("slot reload = %d,%v, want 9,true", v, ok)
	}
	// An aliasing store through a pointer kills slot knowledge.
	analysis.ApplyTransfer(isa.Inst{Op: isa.OpStq, Rd: isa.RegT0 + 1, Ra: isa.RegT0 + 2}, f)
	if _, ok := analysis.EvalValue(isa.Inst{Op: isa.OpLdq, Rd: isa.RegT0, Ra: isa.RegFP, Imm: 16}, f); ok {
		t.Error("slot survived an aliasing store")
	}
	// Redefining fp kills slots too.
	f2 := analysis.NewFacts()
	f2.SetReg(isa.RegA0, 9)
	analysis.ApplyTransfer(isa.Inst{Op: isa.OpStq, Rd: isa.RegA0, Ra: isa.RegFP, Imm: 16}, f2)
	analysis.ApplyTransfer(isa.Inst{Op: isa.OpLdq, Rd: isa.RegFP, Ra: isa.RegSP, Imm: 8}, f2)
	if len(f2.Slots) != 0 {
		t.Error("slots survived fp redefinition")
	}
	// A call kills everything.
	f3 := analysis.NewFacts()
	f3.SetReg(isa.RegT0, 1)
	analysis.ApplyTransfer(isa.Inst{Op: isa.OpStq, Rd: isa.RegT0, Ra: isa.RegFP, Imm: 8}, f3)
	analysis.ApplyTransfer(isa.Inst{Op: isa.OpJsr, Rd: isa.RegRA, Imm: 0}, f3)
	if len(f3.Slots) != 0 {
		t.Error("slots survived a call")
	}
	if _, ok := f3.Reg(isa.RegT0); ok {
		t.Error("caller-saved register survived a call")
	}
}

func TestUseDefStores(t *testing.T) {
	use, def := analysis.UseDef(isa.Inst{Op: isa.OpStq, Rd: 5, Ra: 6, Imm: 8})
	if !use.Has(5) || !use.Has(6) {
		t.Error("store must use value and base registers")
	}
	if def != 0 {
		t.Error("store defines nothing")
	}
	use, def = analysis.UseDef(isa.Inst{Op: isa.OpLdq, Rd: 5, Ra: 6})
	if !use.Has(6) || !def.Has(5) {
		t.Error("load use/def wrong")
	}
}
