// Package specialize implements profile-guided code specialization, the
// thesis's Chapter X payoff: given a procedure and a semi-invariant
// register value discovered by value profiling, it clones the
// procedure, constant-propagates the value through the clone, folds
// instructions and resolves branches, removes dead code, and installs a
// guarded dispatch stub so calls run the specialized body whenever the
// profiled value recurs ("there will be one general version of the
// code, and a special version ... a selection mechanism based on the
// invariant variable will choose which code to execute").
//
// The dataflow machinery (CFG, constant propagation, liveness) lives in
// internal/analysis; this package supplies only the transformation.
package specialize

import (
	"fmt"

	"valueprof/internal/analysis"
	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Info reports what specialization accomplished.
type Info struct {
	Proc      string
	Reg       uint8
	Value     int64
	OrigSize  int // instructions in the original body
	SpecSize  int // instructions in the specialized body after DCE
	Folded    int // instructions replaced by constants
	Reduced   int // register operands rewritten to immediate forms
	Branches  int // conditional branches resolved
	Removed   int // instructions deleted as dead
	StubStart int // pc of the dispatch stub
	SpecStart int // pc of the specialized body
}

// Specialize clones prog and installs a specialized version of the
// named procedure, valid under the assumption that register reg holds
// value at entry (typically an argument register whose parameter
// profile is semi-invariant). Every direct call to the procedure is
// redirected through a guard stub that dispatches to the specialized
// body when the assumption holds and to the original otherwise.
//
// The transformation performs intra-procedural constant propagation
// seeded with reg=value, folds instructions whose inputs become known,
// resolves conditional branches, and dead-code-eliminates the result
// with a backward liveness pass.
func Specialize(prog *program.Program, procName string, reg uint8, value int64) (*program.Program, *Info, error) {
	if value < -(1<<31) || value > (1<<31)-1 {
		return nil, nil, fmt.Errorf("specialize: guard value %d does not fit the cmpeqi immediate", value)
	}
	if reg >= isa.NumRegs || reg == isa.RegZero {
		return nil, nil, fmt.Errorf("specialize: cannot specialize on register %d", reg)
	}
	src := prog.ProcByName(procName)
	if src == nil {
		return nil, nil, fmt.Errorf("specialize: no procedure %q", procName)
	}

	body := prog.Code[src.Start:src.End]
	for i, in := range body {
		if in.Op == isa.OpJmp {
			return nil, nil, fmt.Errorf("specialize: %s+%d is an indirect jump; cannot specialize", procName, i)
		}
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			if tgt < src.Start || tgt >= src.End {
				return nil, nil, fmt.Errorf("specialize: %s+%d branches outside the procedure", procName, i)
			}
		}
	}
	last := body[len(body)-1]
	if last.Op != isa.OpRet && last.Op != isa.OpBr && !last.IsBranchOrJump() {
		return nil, nil, fmt.Errorf("specialize: %s may fall through its end", procName)
	}

	info := &Info{Proc: procName, Reg: reg, Value: value, OrigSize: len(body)}

	spec := optimize(body, src.Start, reg, value, info)

	out := prog.Clone()
	stubStart := len(out.Code)
	specStart := stubStart + 3
	info.StubStart = stubStart
	info.SpecStart = specStart

	// Guard stub:
	//   cmpeqi at, reg, value
	//   bne    at, specStart
	//   br     origStart
	out.Code = append(out.Code,
		isa.Inst{Op: isa.OpCmpeqi, Rd: isa.RegAT, Ra: reg, Imm: int32(value)},
		isa.Inst{Op: isa.OpBne, Ra: isa.RegAT, Imm: int32(specStart)},
		isa.Inst{Op: isa.OpBr, Imm: int32(src.Start)},
	)

	// Append the specialized body, rebasing intra-procedure targets.
	for _, in := range spec.code {
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			in.Imm = int32(spec.newPC[tgt-src.Start] + specStart)
		}
		out.Code = append(out.Code, in)
	}
	info.SpecSize = len(spec.code)

	// Redirect every direct call to the original through the stub
	// (indirect jsrr calls keep the original; they still work).
	for pc := range out.Code {
		if pc >= stubStart {
			break
		}
		if out.Code[pc].Op == isa.OpJsr && int(out.Code[pc].Imm) == src.Start {
			out.Code[pc].Imm = int32(stubStart)
		}
	}

	out.Procs = append(out.Procs,
		program.Proc{Name: procName + "$guard", Start: stubStart, End: specStart},
		program.Proc{Name: procName + "$spec", Start: specStart, End: len(out.Code)},
	)
	out.Labels[procName+"$guard"] = stubStart
	out.Labels[procName+"$spec"] = specStart
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("specialize: internal error: %w", err)
	}
	return out, info, nil
}

// specResult is the optimized body plus the old-offset → new-offset map
// (old offsets are relative to the procedure start).
type specResult struct {
	code  []isa.Inst
	newPC []int
}

// optimize runs constant propagation (seeded with reg=value), folding,
// branch resolution, liveness-based dead-code elimination, and
// compaction over one procedure body, all on the shared framework in
// internal/analysis. Branch targets in the returned code are still
// absolute original pcs; the caller rebases them.
func optimize(body []isa.Inst, base int, reg uint8, value int64, info *Info) *specResult {
	n := len(body)
	work := make([]isa.Inst, n)
	copy(work, body)

	// --- constant propagation over the body CFG ---
	cfg := analysis.ForBody(work, base)
	entryFacts := analysis.NewFacts()
	entryFacts.SetReg(reg, value)
	cp := cfg.ConstProp(entryFacts)

	// --- folding and branch resolution, replaying per-block facts ---
	for b := range cfg.Blocks {
		if !cp.Reached[b] {
			continue
		}
		f := cp.In[b].Clone()
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			i := pc - base
			inst := work[i]
			if inst.Op.HasDest() && inst.Rd != isa.RegZero {
				alreadyLI := inst.Op == isa.OpAddi && inst.Ra == isa.RegZero
				if v, ok := analysis.EvalValue(inst, f); ok && fitsImm(v) && !alreadyLI {
					work[i] = isa.Inst{Op: isa.OpAddi, Rd: inst.Rd, Ra: isa.RegZero, Imm: int32(v)}
					info.Folded++
				} else if red, ok := strengthReduce(inst, f); ok {
					work[i] = red
					info.Reduced++
				}
			}
			switch inst.Op {
			case isa.OpBeq, isa.OpBne:
				if v, known := f.Reg(inst.Ra); known {
					taken := (inst.Op == isa.OpBeq && v == 0) || (inst.Op == isa.OpBne && v != 0)
					if taken {
						work[i] = isa.Inst{Op: isa.OpBr, Imm: inst.Imm}
					} else {
						work[i] = isa.Inst{Op: isa.OpNop}
					}
					info.Branches++
				}
			}
			analysis.ApplyTransfer(work[i], f)
		}
	}

	// --- liveness + dead code elimination over the rewritten body ---
	live := analysis.ForBody(work, base).Liveness()
	dead := make([]bool, n)
	for i := range work {
		inst := work[i]
		if inst.Op == isa.OpNop {
			dead[i] = true
			continue
		}
		if !analysis.SideEffectFree(inst) || !inst.Op.HasDest() {
			continue
		}
		if inst.Rd == isa.RegZero || !live[i].Has(inst.Rd) {
			dead[i] = true
			info.Removed++
		}
	}

	// --- compaction ---
	res := &specResult{newPC: make([]int, n)}
	for i := 0; i < n; i++ {
		res.newPC[i] = len(res.code)
		if !dead[i] {
			res.code = append(res.code, work[i])
		}
	}
	if len(res.code) == 0 {
		// Degenerate but possible only for an empty body; keep a ret.
		res.code = append(res.code, isa.Inst{Op: isa.OpRet, Ra: isa.RegRA})
	}
	return res
}

func fitsImm(v int64) bool { return v >= -(1<<31) && v <= (1<<31)-1 }
