package specialize

import (
	"fmt"

	"valueprof/internal/isa"
	"valueprof/internal/program"
)

// Info reports what specialization accomplished.
type Info struct {
	Proc      string
	Reg       uint8
	Value     int64
	OrigSize  int // instructions in the original body
	SpecSize  int // instructions in the specialized body after DCE
	Folded    int // instructions replaced by constants
	Reduced   int // register operands rewritten to immediate forms
	Branches  int // conditional branches resolved
	Removed   int // instructions deleted as dead
	StubStart int // pc of the dispatch stub
	SpecStart int // pc of the specialized body
}

// Specialize clones prog and installs a specialized version of the
// named procedure, valid under the assumption that register reg holds
// value at entry (typically an argument register whose parameter
// profile is semi-invariant). Every direct call to the procedure is
// redirected through a guard stub that dispatches to the specialized
// body when the assumption holds and to the original otherwise.
//
// The transformation performs intra-procedural constant propagation
// seeded with reg=value, folds instructions whose inputs become known,
// resolves conditional branches, and dead-code-eliminates the result
// with a backward liveness pass.
func Specialize(prog *program.Program, procName string, reg uint8, value int64) (*program.Program, *Info, error) {
	if value < -(1<<31) || value > (1<<31)-1 {
		return nil, nil, fmt.Errorf("specialize: guard value %d does not fit the cmpeqi immediate", value)
	}
	if reg >= isa.NumRegs || reg == isa.RegZero {
		return nil, nil, fmt.Errorf("specialize: cannot specialize on register %d", reg)
	}
	src := prog.ProcByName(procName)
	if src == nil {
		return nil, nil, fmt.Errorf("specialize: no procedure %q", procName)
	}

	body := prog.Code[src.Start:src.End]
	for i, in := range body {
		if in.Op == isa.OpJmp {
			return nil, nil, fmt.Errorf("specialize: %s+%d is an indirect jump; cannot specialize", procName, i)
		}
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			if tgt < src.Start || tgt >= src.End {
				return nil, nil, fmt.Errorf("specialize: %s+%d branches outside the procedure", procName, i)
			}
		}
	}
	last := body[len(body)-1]
	if last.Op != isa.OpRet && last.Op != isa.OpBr && !last.IsBranchOrJump() {
		return nil, nil, fmt.Errorf("specialize: %s may fall through its end", procName)
	}

	info := &Info{Proc: procName, Reg: reg, Value: value, OrigSize: len(body)}

	spec := optimize(body, src.Start, reg, value, info)

	out := prog.Clone()
	stubStart := len(out.Code)
	specStart := stubStart + 3
	info.StubStart = stubStart
	info.SpecStart = specStart

	// Guard stub:
	//   cmpeqi at, reg, value
	//   bne    at, specStart
	//   br     origStart
	out.Code = append(out.Code,
		isa.Inst{Op: isa.OpCmpeqi, Rd: isa.RegAT, Ra: reg, Imm: int32(value)},
		isa.Inst{Op: isa.OpBne, Ra: isa.RegAT, Imm: int32(specStart)},
		isa.Inst{Op: isa.OpBr, Imm: int32(src.Start)},
	)

	// Append the specialized body, rebasing intra-procedure targets.
	for _, in := range spec.code {
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			in.Imm = int32(spec.newPC[tgt-src.Start] + specStart)
		}
		out.Code = append(out.Code, in)
	}
	info.SpecSize = len(spec.code)

	// Redirect every direct call to the original through the stub
	// (indirect jsrr calls keep the original; they still work).
	for pc := range out.Code {
		if pc >= stubStart {
			break
		}
		if out.Code[pc].Op == isa.OpJsr && int(out.Code[pc].Imm) == src.Start {
			out.Code[pc].Imm = int32(stubStart)
		}
	}

	out.Procs = append(out.Procs,
		program.Proc{Name: procName + "$guard", Start: stubStart, End: specStart},
		program.Proc{Name: procName + "$spec", Start: specStart, End: len(out.Code)},
	)
	out.Labels[procName+"$guard"] = stubStart
	out.Labels[procName+"$spec"] = specStart
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("specialize: internal error: %w", err)
	}
	return out, info, nil
}

// specResult is the optimized body plus the old-offset → new-offset map
// (old offsets are relative to the procedure start).
type specResult struct {
	code  []isa.Inst
	newPC []int
}

// optimize runs constant propagation (seeded with reg=value), folding,
// branch resolution, liveness-based dead-code elimination, and
// compaction over one procedure body. Branch targets in the returned
// code are still absolute original pcs; the caller rebases them.
func optimize(body []isa.Inst, base int, reg uint8, value int64, info *Info) *specResult {
	n := len(body)
	work := make([]isa.Inst, n)
	copy(work, body)

	// --- constant propagation over basic blocks ---
	leaders := findLeaders(work, base)
	var starts []int
	for i := 0; i < n; i++ {
		if leaders[i] {
			starts = append(starts, i)
		}
	}
	blockEnd := func(b int) int {
		if b+1 < len(starts) {
			return starts[b+1]
		}
		return n
	}

	in := make([]*facts, len(starts))
	reached := make([]bool, len(starts))
	entryFacts := newFacts()
	entryFacts.setReg(reg, value)
	in[0] = entryFacts
	reached[0] = true
	worklist := []int{0}
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		f := in[b].clone()
		end := blockEnd(b)
		for i := starts[b]; i < end; i++ {
			applyTransfer(work[i], f)
		}
		for _, s := range blockSuccs(work[end-1], end-1, base, starts, n) {
			if !reached[s] {
				reached[s] = true
				in[s] = f.clone()
				worklist = append(worklist, s)
			} else if merged := meet(in[s], f); !equalFacts(merged, in[s]) {
				in[s] = merged
				worklist = append(worklist, s)
			}
		}
	}

	// --- folding and branch resolution, using per-block facts ---
	for b := range starts {
		if !reached[b] {
			continue
		}
		f := in[b].clone()
		for i := starts[b]; i < blockEnd(b); i++ {
			inst := work[i]
			if inst.Op.HasDest() && inst.Rd != isa.RegZero {
				alreadyLI := inst.Op == isa.OpAddi && inst.Ra == isa.RegZero
				if v, ok := evalValue(inst, f); ok && fitsImm(v) && !alreadyLI {
					work[i] = isa.Inst{Op: isa.OpAddi, Rd: inst.Rd, Ra: isa.RegZero, Imm: int32(v)}
					info.Folded++
				} else if red, ok := strengthReduce(inst, f); ok {
					work[i] = red
					info.Reduced++
				}
			}
			switch inst.Op {
			case isa.OpBeq, isa.OpBne:
				if v, known := f.reg(inst.Ra); known {
					taken := (inst.Op == isa.OpBeq && v == 0) || (inst.Op == isa.OpBne && v != 0)
					if taken {
						work[i] = isa.Inst{Op: isa.OpBr, Imm: inst.Imm}
					} else {
						work[i] = isa.Inst{Op: isa.OpNop}
					}
					info.Branches++
				}
			}
			applyTransfer(work[i], f)
		}
	}

	// --- liveness + dead code elimination ---
	live := liveness(work, base, starts, blockEnd)
	dead := make([]bool, n)
	for i := range work {
		inst := work[i]
		if inst.Op == isa.OpNop {
			dead[i] = true
			continue
		}
		if !sideEffectFree(inst) || !inst.Op.HasDest() {
			continue
		}
		if inst.Rd == isa.RegZero || !live[i].has(inst.Rd) {
			dead[i] = true
			info.Removed++
		}
	}

	// --- compaction ---
	res := &specResult{newPC: make([]int, n)}
	for i := 0; i < n; i++ {
		res.newPC[i] = len(res.code)
		if !dead[i] {
			res.code = append(res.code, work[i])
		}
	}
	if len(res.code) == 0 {
		// Degenerate but possible only for an empty body; keep a ret.
		res.code = append(res.code, isa.Inst{Op: isa.OpRet, Ra: isa.RegRA})
	}
	return res
}

func fitsImm(v int64) bool { return v >= -(1<<31) && v <= (1<<31)-1 }

// findLeaders marks basic-block leaders within the body (offsets
// relative to the body; branch targets are absolute pcs).
func findLeaders(body []isa.Inst, base int) []bool {
	leaders := make([]bool, len(body))
	leaders[0] = true
	for i, in := range body {
		if tgt, ok := in.Target(); ok && in.Op != isa.OpJsr {
			leaders[tgt-base] = true
		}
		if in.IsBranchOrJump() && in.Op != isa.OpJsr && in.Op != isa.OpJsrr && i+1 < len(body) {
			leaders[i+1] = true
		}
	}
	return leaders
}

// blockSuccs returns the successor block indices of the instruction at
// body offset i when it is the last instruction of its block. nBody is
// the body length; fallthroughs off the end are dropped.
func blockSuccs(in isa.Inst, i, base int, starts []int, nBody int) []int {
	blockIndexOf := func(off int) int {
		lo, hi := 0, len(starts)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if starts[mid] <= off {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	var succs []int
	fallthru := func() {
		if i+1 < nBody {
			succs = append(succs, blockIndexOf(i+1))
		}
	}
	switch in.Op {
	case isa.OpBr:
		succs = append(succs, blockIndexOf(int(in.Imm)-base))
	case isa.OpBeq, isa.OpBne:
		succs = append(succs, blockIndexOf(int(in.Imm)-base))
		fallthru()
	case isa.OpRet, isa.OpJmp:
		// procedure exits: no successors within the body
	case isa.OpSyscall:
		if in.Imm != isa.SysExit {
			fallthru()
		}
	default:
		fallthru()
	}
	return succs
}

// liveness computes per-instruction live-after sets with a backward
// fixpoint over the body's basic blocks.
func liveness(body []isa.Inst, base int, starts []int, blockEnd func(int) int) []regSet {
	n := len(body)
	liveAfter := make([]regSet, n)
	liveIn := make([]regSet, len(starts))

	changed := true
	for changed {
		changed = false
		for b := len(starts) - 1; b >= 0; b-- {
			end := blockEnd(b)
			lastIdx := end - 1
			var out regSet
			for _, s := range blockSuccs(body[lastIdx], lastIdx, base, starts, len(body)) {
				out |= liveIn[s]
			}
			for i := lastIdx; i >= starts[b]; i-- {
				liveAfter[i] = out
				use, def := useDef(body[i])
				out = (out &^ regSet(def)) | use
			}
			if out != liveIn[b] {
				liveIn[b] = out
				changed = true
			}
		}
	}
	return liveAfter
}
