package specialize

import (
	"testing"

	"valueprof/internal/analysis"
	"valueprof/internal/isa"
)

func factsWith(r uint8, v int64) *analysis.Facts {
	f := analysis.NewFacts()
	f.SetReg(r, v)
	return f
}

func TestStrengthReduceRightOperand(t *testing.T) {
	f := factsWith(2, 40)
	in := isa.Inst{Op: isa.OpAdd, Rd: 3, Ra: 1, Rb: 2}
	out, ok := strengthReduce(in, f)
	if !ok || out.Op != isa.OpAddi || out.Ra != 1 || out.Imm != 40 {
		t.Errorf("add reduce = %+v, %v", out, ok)
	}
	in = isa.Inst{Op: isa.OpMul, Rd: 3, Ra: 1, Rb: 2}
	out, ok = strengthReduce(in, f)
	if !ok || out.Op != isa.OpMuli || out.Imm != 40 {
		t.Errorf("mul reduce = %+v, %v", out, ok)
	}
}

func TestStrengthReduceCommutedLeft(t *testing.T) {
	f := factsWith(1, 7)
	in := isa.Inst{Op: isa.OpAdd, Rd: 3, Ra: 1, Rb: 2}
	out, ok := strengthReduce(in, f)
	if !ok || out.Op != isa.OpAddi || out.Ra != 2 || out.Imm != 7 {
		t.Errorf("commuted add = %+v, %v", out, ok)
	}
	// sub with known LEFT operand cannot commute.
	in = isa.Inst{Op: isa.OpSub, Rd: 3, Ra: 1, Rb: 2}
	if _, ok := strengthReduce(in, f); ok {
		t.Error("sub with known left operand reduced")
	}
}

func TestStrengthReduceSub(t *testing.T) {
	f := factsWith(2, 5)
	in := isa.Inst{Op: isa.OpSub, Rd: 3, Ra: 1, Rb: 2}
	out, ok := strengthReduce(in, f)
	if !ok || out.Op != isa.OpAddi || out.Imm != -5 {
		t.Errorf("sub reduce = %+v, %v", out, ok)
	}
}

func TestStrengthReduceSkipsBothKnownOrUnknown(t *testing.T) {
	in := isa.Inst{Op: isa.OpAdd, Rd: 3, Ra: 1, Rb: 2}
	if _, ok := strengthReduce(in, analysis.NewFacts()); ok {
		t.Error("no operands known but reduced")
	}
	f := analysis.NewFacts()
	f.SetReg(1, 1)
	f.SetReg(2, 2)
	if _, ok := strengthReduce(in, f); ok {
		t.Error("both operands known should be left to folding")
	}
}

func TestStrengthReduceDivStaysPut(t *testing.T) {
	// No immediate div form; division must not be rewritten.
	f := factsWith(2, 4)
	in := isa.Inst{Op: isa.OpDiv, Rd: 3, Ra: 1, Rb: 2}
	if _, ok := strengthReduce(in, f); ok {
		t.Error("div reduced")
	}
}

func TestStrengthReduceZeroRegisterOperand(t *testing.T) {
	// The zero register is always "known"; add rd, ra, zero with ra
	// unknown reduces to addi rd, ra, 0 (a move) — legal and dead-code
	// transparent.
	in := isa.Inst{Op: isa.OpOr, Rd: 3, Ra: 1, Rb: isa.RegZero}
	out, ok := strengthReduce(in, analysis.NewFacts())
	if !ok || out.Op != isa.OpOri || out.Imm != 0 {
		t.Errorf("or with zero = %+v, %v", out, ok)
	}
}
