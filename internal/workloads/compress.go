package workloads

// compress models 129.compress: LZ77-style compression with a small
// hash of recent 3-byte contexts over generated text with a skewed
// character distribution. The hash-table loads and match-length values
// are the classic semi-invariant sites.
const compressSrc = `
int inbuf[8192];
int outbuf[16384];
int hashtab[1024];

int srcLen;

func lcg(s) {
    return (s * 1103515245 + 12345) & 2147483647;
}

// Generate text with an English-like skew: lots of spaces and 'e'.
func gen(seed, len) {
    var i; var r = seed;
    for (i = 0; i < len; i = i + 1) {
        r = lcg(r);
        var v = (r >> 16) & 255;
        if (v < 64) { inbuf[i] = ' '; }
        else if (v < 128) { inbuf[i] = 'e'; }
        else if (v < 160) { inbuf[i] = 't'; }
        else if (v < 208) { inbuf[i] = 'a' + (v & 7); }
        else { inbuf[i] = '!' + (v & 63); }
    }
    srcLen = len;
}

func hash3(a, b, c) {
    return ((a * 33 + b) * 33 + c) & 1023;
}

// LZ77 with 3-byte-context hash; emits (255, len, dist) triples for
// matches and literals otherwise. Returns the output length.
func compress() {
    var i = 0; var out = 0; var h; var cand; var mlen; var limit;
    while (i < srcLen) {
        if (i + 3 <= srcLen) {
            h = hash3(inbuf[i], inbuf[i+1], inbuf[i+2]);
            cand = hashtab[h] - 1;
            hashtab[h] = i + 1;
            if (cand >= 0 && cand < i && i - cand < 4096) {
                mlen = 0;
                limit = srcLen - i;
                if (limit > 250) { limit = 250; }
                while (mlen < limit && inbuf[cand + mlen] == inbuf[i + mlen]) {
                    mlen = mlen + 1;
                }
                if (mlen >= 3) {
                    outbuf[out] = 255; out = out + 1;
                    outbuf[out] = mlen; out = out + 1;
                    outbuf[out] = i - cand; out = out + 1;
                    i = i + mlen;
                    continue;
                }
            }
        }
        outbuf[out] = inbuf[i];
        out = out + 1;
        i = i + 1;
    }
    return out;
}

func checksum(buf[], n) {
    var s = 0; var i;
    for (i = 0; i < n; i = i + 1) {
        s = (s * 131 + buf[i]) & 0xFFFFFFF;
    }
    return s;
}

func main() {
    var seed = getint();
    var len = getint();
    var reps = getint();
    var r; var outLen = 0; var sum = 0; var i;
    for (r = 0; r < reps; r = r + 1) {
        gen(seed + r * 7, len);
        for (i = 0; i < 1024; i = i + 1) { hashtab[i] = 0; }
        outLen = compress();
        sum = (sum + checksum(outbuf, outLen)) & 0xFFFFFFF;
        putint(outLen); putchar(' ');
    }
    putint(sum);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "compress",
		Description: "LZ77 compression of skewed text (models 129.compress)",
		Source:      compressSrc,
		Test:        Input{Name: "test", Args: []int64{12345, 3000, 3}, Want: "2897 2916 2918 75310783\n"},
		Train:       Input{Name: "train", Args: []int64{99991, 4500, 4}, Want: "4357 4336 4362 4344 87127435\n"},
	})
}
