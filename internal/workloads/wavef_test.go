package workloads

import (
	"fmt"
	"strings"
	"testing"
)

// TestWavefAgainstReference recomputes the wave-equation output with an
// independent Go implementation of the same fixed-point scheme.
func TestWavefAgainstReference(t *testing.T) {
	ref := func(seed, steps int64) string {
		const N = 384
		const c2 = 900
		u := make([]int64, N)
		uPrev := make([]int64, N)
		uNext := make([]int64, N)
		r := seed
		for b := 0; b < 4; b++ {
			r = lcgRef(r)
			center := 30 + r%(N-60)
			amp := 200 + ((r >> 8) & 255)
			for w := int64(-12); w <= 12; w++ {
				h := amp * (144 - w*w) / 144
				if h > 0 {
					u[center+w] += h
					uPrev[center+w] += h
				}
			}
		}
		energy := func() int64 {
			var e int64
			for i := 1; i < N; i++ {
				v := u[i] - uPrev[i]
				dx := u[i] - u[i-1]
				e += v*v + dx*dx
			}
			return e
		}
		var out strings.Builder
		var sum int64
		for s := int64(0); s < steps; s++ {
			for i := 1; i < N-1; i++ {
				lap := u[i+1] - 2*u[i] + u[i-1]
				uNext[i] = 2*u[i] - uPrev[i] + (c2*lap)/1024
			}
			uNext[0] = 0
			uNext[N-1] = 0
			for i := 0; i < N; i++ {
				uPrev[i] = u[i]
				u[i] = uNext[i]
			}
			if s%16 == 0 {
				sum = (sum*31 + energy()) & 0xFFFFFF
				fmt.Fprintf(&out, "%d ", sum&0xFFF)
			}
		}
		fmt.Fprintf(&out, "%d\n", sum)
		return out.String()
	}
	w, err := ByName("wavef")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range w.Inputs() {
		want := ref(in.Args[0], in.Args[1])
		res, err := w.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want {
			t.Errorf("%s: MiniC output %q != Go reference %q", in.Name, res.Output, want)
		}
	}
}

// TestParsefDeterministicAndBalanced sanity-checks the parser workload:
// deterministic output, and the character-class histogram counts
// parentheses in pairs.
func TestParsefDeterministicAndBalanced(t *testing.T) {
	w, err := ByName("parsef")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(w.Test)
	if err != nil {
		t.Fatal(err)
	}
	var acc, digits, ops, parens int64
	if _, err := fmt.Sscanf(res.Output, "%d %d %d %d", &acc, &digits, &ops, &parens); err != nil {
		t.Fatalf("parse %q: %v", res.Output, err)
	}
	if parens%2 != 0 {
		t.Errorf("unbalanced parens: %d", parens)
	}
	if digits <= ops || digits <= parens {
		t.Errorf("digit skew missing: digits=%d ops=%d parens=%d", digits, ops, parens)
	}
	if acc <= 0 || acc >= 1000000007 {
		t.Errorf("accumulator out of field: %d", acc)
	}
}
