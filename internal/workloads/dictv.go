package workloads

// dictv models 147.vortex: an object-store transaction mix against an
// open-addressing hash table — inserts, lookups and deletes with a
// skewed (hot-key) distribution, plus probe-length accounting. Table
// metadata loads (size, mask) are fully invariant; key loads are
// semi-invariant because of the hot-key skew.
const dictvSrc = `
int keys[2048];    // 0 empty, -1 tombstone, else key+1
int vals[2048];
int count;
int probes;

func hash(k) {
    k = k * 2654435761;
    k = k & 0x7FFFFFFF;
    return (k >> 8) & 2047;
}

// Returns slot of key, or -1.
func find(k) {
    var h = hash(k); var i = 0;
    while (i < 2048) {
        var slot = (h + i) & 2047;
        var kv = keys[slot];
        probes = probes + 1;
        if (kv == 0) { return 0 - 1; }
        if (kv == k + 1) { return slot; }
        i = i + 1;
    }
    return 0 - 1;
}

func insert(k, v) {
    var h = hash(k); var i = 0; var firstFree = 0 - 1;
    while (i < 2048) {
        var slot = (h + i) & 2047;
        var kv = keys[slot];
        probes = probes + 1;
        if (kv == k + 1) { vals[slot] = v; return 0; }
        if (kv == 0) {
            if (firstFree >= 0) { slot = firstFree; }
            keys[slot] = k + 1;
            vals[slot] = v;
            count = count + 1;
            return 1;
        }
        if (kv == -1 && firstFree < 0) { firstFree = slot; }
        i = i + 1;
    }
    return 0 - 1;
}

func remove(k) {
    var slot = find(k);
    if (slot < 0) { return 0; }
    keys[slot] = -1;
    count = count - 1;
    return 1;
}

func main() {
    var seed = getint();
    var ops = getint();
    var r = seed; var i; var hits = 0; var sum = 0;
    for (i = 0; i < ops; i = i + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        var kind = (r >> 20) % 10;
        r = (r * 1103515245 + 12345) & 2147483647;
        var k;
        // 70% of keys come from a hot set of 64.
        if ((r >> 8) % 10 < 7) { k = 1 + ((r >> 13) & 63); }
        else { k = 1 + ((r >> 13) % 1500); }
        if (kind < 5) {
            insert(k, i);
        } else if (kind < 8) {
            var slot = find(k);
            if (slot >= 0) { hits = hits + 1; sum = (sum + vals[slot]) & 0xFFFFFF; }
        } else {
            remove(k);
        }
    }
    putint(count); putchar(' ');
    putint(hits); putchar(' ');
    putint(sum); putchar(' ');
    putint(probes);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "dictv",
		Description: "hash-table transaction mix with hot keys (models 147.vortex)",
		Test:        Input{Name: "test", Args: []int64{31337, 9000}, Want: "798 1600 6913483 12014\n"},
		Train:       Input{Name: "train", Args: []int64{271828, 14000}, Want: "935 2559 431622 20098\n"},
		Source:      dictvSrc,
	})
}
