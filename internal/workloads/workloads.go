// Package workloads provides the benchmark suite: eight SPEC95-like
// programs written in MiniC, each with deterministic "test" and "train"
// inputs, standing in for the SPEC binaries of the paper's Table
// III.A.1. Each workload models the dominant kernel and value behaviour
// of its SPEC counterpart:
//
//	compress  – LZ77/RLE compression of skewed text      (≈ 129.compress)
//	bytecode  – stack bytecode interpreter dispatch loop (≈ 130.li / 134.perl)
//	mcsim     – tiny register-machine simulator          (≈ 124.m88ksim)
//	gosearch  – board-game position evaluation           (≈ 099.go)
//	imagef    – image convolution + quantization         (≈ 132.ijpeg)
//	dictv     – hash/dictionary transaction mix          (≈ 147.vortex)
//	sortq     – sorting and searching pointer churn      (≈ 126.gcc-ish)
//	lifegrid  – cellular automaton generations           (extra loop-heavy FP-stand-in)
//
// Programs read their parameters (seed, size, iterations) with getint,
// so "test" and "train" runs differ the way the paper's two data sets
// differ: same code paths, different data.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"valueprof/internal/minic"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// Input is one named data set for a workload.
type Input struct {
	Name string
	Args []int64
	// Want is the expected program output; when non-empty, Run
	// verifies it (self-checking workloads, like SPEC's output
	// validation).
	Want string
}

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	Source      string // MiniC source
	Test        Input
	Train       Input
}

var (
	mu       sync.Mutex
	registry = map[string]*Workload{}
	compiled = map[string]*program.Program{}
)

func register(w *Workload) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// All returns the workloads sorted by name.
func All() []*Workload {
	mu.Lock()
	defer mu.Unlock()
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	mu.Lock()
	defer mu.Unlock()
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// Compile returns the compiled program for w, caching the result (the
// program is never mutated by callers; instrumentation lives in the VM).
func (w *Workload) Compile() (*program.Program, error) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := compiled[w.Name]; ok {
		return p, nil
	}
	p, err := minic.Compile(w.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: compiling %s: %w", w.Name, err)
	}
	compiled[w.Name] = p
	return p, nil
}

// Run executes the workload on the given input uninstrumented and
// verifies the expected output when one is recorded.
func (w *Workload) Run(in Input) (*vm.Result, error) {
	p, err := w.Compile()
	if err != nil {
		return nil, err
	}
	res, err := vm.Execute(p, in.Args)
	if err != nil {
		return nil, fmt.Errorf("workloads: running %s/%s: %w", w.Name, in.Name, err)
	}
	if in.Want != "" && res.Output != in.Want {
		return nil, fmt.Errorf("workloads: %s/%s output mismatch:\n got %q\nwant %q", w.Name, in.Name, res.Output, in.Want)
	}
	return res, nil
}

// Inputs returns the two data sets in (test, train) order.
func (w *Workload) Inputs() [2]Input { return [2]Input{w.Test, w.Train} }
