package workloads

// gosearch models 099.go: repeated whole-board scans of a 9x9 game
// board, scoring every empty point by local patterns (neighbour stones,
// liberties, edge proximity) and greedily playing the best move for
// alternating colours. Board loads are highly invariant (mostly empty /
// stable stones), as the paper observed for go.
const gosearchSrc = `
int board[81];     // 0 empty, 1 black, 2 white
int libtmp[81];

func at(r, c) {
    if (r < 0 || r > 8 || c < 0 || c > 8) { return 3; }  // border
    return board[r * 9 + c];
}

// Pseudo-liberties of the stone group seed at (r,c), bounded flood fill
// using an explicit stack.
int fsR[96];
int fsC[96];
func liberties(r, c) {
    var color = at(r, c);
    var i;
    for (i = 0; i < 81; i = i + 1) { libtmp[i] = 0; }
    var sp = 0; var libs = 0;
    fsR[sp] = r; fsC[sp] = c; sp = sp + 1;
    libtmp[r * 9 + c] = 1;
    while (sp > 0) {
        sp = sp - 1;
        var cr = fsR[sp]; var cc = fsC[sp];
        var d;
        for (d = 0; d < 4; d = d + 1) {
            var nr = cr; var nc = cc;
            if (d == 0) { nr = cr - 1; }
            if (d == 1) { nr = cr + 1; }
            if (d == 2) { nc = cc - 1; }
            if (d == 3) { nc = cc + 1; }
            var v = at(nr, nc);
            if (v == 3) { continue; }
            var idx = nr * 9 + nc;
            if (libtmp[idx] != 0) { continue; }
            libtmp[idx] = 1;
            if (v == 0) { libs = libs + 1; }
            else if (v == color && sp < 90) {
                fsR[sp] = nr; fsC[sp] = nc; sp = sp + 1;
            }
        }
    }
    return libs;
}

// Score a candidate move for color at (r,c): prefers touching friendly
// stones with liberties, attacking short-liberty enemies, and the
// 3rd-line sweet spot.
func score(r, c, color) {
    var s = 0; var d;
    var enemy = 3 - color;
    for (d = 0; d < 4; d = d + 1) {
        var nr = r; var nc = c;
        if (d == 0) { nr = r - 1; }
        if (d == 1) { nr = r + 1; }
        if (d == 2) { nc = c - 1; }
        if (d == 3) { nc = c + 1; }
        var v = at(nr, nc);
        if (v == color) { s = s + 4 + liberties(nr, nc); }
        if (v == enemy) {
            var l = liberties(nr, nc);
            if (l <= 1) { s = s + 20; }
            else { s = s + 6 - l; }
        }
        if (v == 3) { s = s - 2; }
    }
    var er = r; var ec = c;
    if (er > 4) { er = 8 - er; }
    if (ec > 4) { ec = 8 - ec; }
    if (er == 2 || ec == 2) { s = s + 3; }
    return s;
}

func playGame(seed, moves) {
    var i;
    for (i = 0; i < 81; i = i + 1) { board[i] = 0; }
    var r = seed; var m; var color = 1; var total = 0;
    // A few random stones to diversify positions.
    for (m = 0; m < 6; m = m + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        var p = r % 81;
        if (board[p] == 0) { board[p] = 1 + (m & 1); }
    }
    for (m = 0; m < moves; m = m + 1) {
        var best = 0 - 1000; var bestP = 0 - 1;
        var p;
        for (p = 0; p < 81; p = p + 1) {
            if (board[p] != 0) { continue; }
            var sc = score(p / 9, p % 9, color);
            // deterministic tie-break jitter
            sc = sc * 16 + (p * 7 + m) % 16;
            if (sc > best) { best = sc; bestP = p; }
        }
        if (bestP < 0) { break; }
        board[bestP] = color;
        total = total + best;
        color = 3 - color;
    }
    return total;
}

func main() {
    var seed = getint();
    var games = getint();
    var movesPerGame = getint();
    var g; var acc = 0;
    for (g = 0; g < games; g = g + 1) {
        acc = (acc + playGame(seed + g * 31, movesPerGame)) & 0xFFFFFF;
    }
    putint(acc);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "gosearch",
		Description: "9x9 board-game greedy move search (models 099.go)",
		Source:      gosearchSrc,
		Test:        Input{Name: "test", Args: []int64{11, 2, 18}, Want: "11500\n"},
		Train:       Input{Name: "train", Args: []int64{777, 3, 22}, Want: "24205\n"},
	})
}
