package workloads

// bytecode models the interpreter loops of 130.li and 134.perl: a
// stack-based bytecode VM whose fetch-decode-dispatch loop is dominated
// by highly invariant opcode loads and nearly constant operand values.
// main assembles two bytecode routines (sum of squares mod m, and a
// Collatz-length loop) and interprets them repeatedly.
const bytecodeSrc = `
// Bytecode opcodes.
// 0 HALT | 1 PUSH imm | 2 LOAD slot | 3 STORE slot | 4 ADD | 5 SUB
// 6 MUL | 7 MOD | 8 LT | 9 JNZ addr | 10 JMP addr | 11 DUP | 12 EQ
// 13 AND1 (x & 1) | 14 SHR1 (x >> 1)

int code[256];
int stack[64];
int slots[16];
int codeLen;

func emit(op, arg) {
    code[codeLen] = op * 65536 + arg;
    codeLen = codeLen + 1;
}

// Interpret until HALT; returns top of stack at halt (or 0).
func run() {
    var pc = 0; var sp = 0; var op; var arg; var w;
    while (1) {
        w = code[pc];
        op = w / 65536;
        arg = w % 65536;
        pc = pc + 1;
        if (op == 0) {
            if (sp > 0) { return stack[sp - 1]; }
            return 0;
        }
        if (op == 1) { stack[sp] = arg; sp = sp + 1; continue; }
        if (op == 2) { stack[sp] = slots[arg]; sp = sp + 1; continue; }
        if (op == 3) { sp = sp - 1; slots[arg] = stack[sp]; continue; }
        if (op == 4) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; continue; }
        if (op == 5) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] - stack[sp]; continue; }
        if (op == 6) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; continue; }
        if (op == 7) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] % stack[sp]; continue; }
        if (op == 8) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] < stack[sp]; continue; }
        if (op == 9) { sp = sp - 1; if (stack[sp] != 0) { pc = arg; } continue; }
        if (op == 10) { pc = arg; continue; }
        if (op == 11) { stack[sp] = stack[sp - 1]; sp = sp + 1; continue; }
        if (op == 12) { sp = sp - 1; stack[sp - 1] = stack[sp - 1] == stack[sp]; continue; }
        if (op == 13) { stack[sp - 1] = stack[sp - 1] & 1; continue; }
        if (op == 14) { stack[sp - 1] = stack[sp - 1] >> 1; continue; }
        return 0 - 1;
    }
    return 0;
}

// Routine 1: sum of i*i for i in [1,n], mod m.
// slots: 0=i 1=acc 2=n 3=m
func buildSumSquares(n, m) {
    codeLen = 0;
    slots[0] = 1; slots[1] = 0; slots[2] = n; slots[3] = m;
    // loop:
    emit(2, 0); emit(11, 0); emit(6, 0);      // i*i            @0,1,2
    emit(2, 1); emit(4, 0);                   // + acc          @3,4
    emit(2, 3); emit(7, 0);                   // % m            @5,6
    emit(3, 1);                               // acc =          @7
    emit(2, 0); emit(1, 1); emit(4, 0); emit(3, 0);  // i=i+1   @8..11
    emit(2, 0); emit(2, 2); emit(8, 0);       // i < n ?        @12,13,14
    emit(9, 0);                               // jnz loop       @15
    emit(2, 1);                               // push acc       @16
    emit(0, 0);                               // halt           @17
}

// Routine 2: Collatz chain length of n.
// slots: 0=n 1=len
func buildCollatz(n) {
    codeLen = 0;
    slots[0] = n; slots[1] = 0;
    emit(2, 0); emit(1, 1); emit(12, 0);      // loop: n == 1   @0,1,2
    emit(9, 22);                              // jnz end        @3
    emit(2, 0); emit(13, 0);                  // n & 1          @4,5
    emit(9, 11);                              // jnz odd        @6
    emit(2, 0); emit(14, 0); emit(3, 0);      // n = n >> 1     @7,8,9
    emit(10, 17);                             // jmp step       @10
    emit(2, 0); emit(1, 3); emit(6, 0);       // odd: n*3       @11,12,13
    emit(1, 1); emit(4, 0);                   // +1             @14,15
    emit(3, 0);                               // n =            @16
    emit(2, 1); emit(1, 1); emit(4, 0); emit(3, 1); // step: len=len+1 @17..20
    emit(10, 0);                              // jmp loop       @21
    emit(2, 1);                               // end: push len  @22
    emit(0, 0);                               // halt           @23
}

func main() {
    var seed = getint();
    var iters = getint();
    var acc = 0; var k; var r = seed;
    for (k = 0; k < iters; k = k + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        buildSumSquares(50 + (r & 63), 9973);
        acc = (acc + run()) & 0xFFFFFF;
    }
    putint(acc); putchar(' ');
    acc = 0;
    for (k = 0; k < iters; k = k + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        buildCollatz(3 + (r & 1023));
        acc = (acc + run()) & 0xFFFFFF;
    }
    putint(acc);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "bytecode",
		Description: "stack bytecode interpreter (models 130.li / 134.perl)",
		Source:      bytecodeSrc,
		Test:        Input{Name: "test", Args: []int64{7, 60}, Want: "302059 3887\n"},
		Train:       Input{Name: "train", Args: []int64{1234577, 90}, Want: "434284 4913\n"},
	})
}
