package workloads

// wavef models the SPEC95 FP stencil codes (101.tomcatv / 104.hydro2d
// class) in fixed-point arithmetic: a 1-D wave equation integrated over
// many timesteps. Loads are smooth and strongly strided, the Courant
// coefficient is invariant, and boundary cells are constant — the FP
// value-profile the thesis contrasts with integer codes.
const wavefSrc = `
int u[512];
int uPrev[512];
int uNext[512];

int N;
int c2;    // Courant number squared, fixed-point /1024

func stepWave() {
    var i;
    for (i = 1; i < N - 1; i = i + 1) {
        var lap = u[i + 1] - 2 * u[i] + u[i - 1];
        uNext[i] = 2 * u[i] - uPrev[i] + (c2 * lap) / 1024;
    }
    // Fixed (reflecting) boundaries.
    uNext[0] = 0;
    uNext[N - 1] = 0;
    for (i = 0; i < N; i = i + 1) {
        uPrev[i] = u[i];
        u[i] = uNext[i];
    }
}

func energy() {
    var i; var e = 0;
    for (i = 1; i < N; i = i + 1) {
        var v = u[i] - uPrev[i];
        var dx = u[i] - u[i - 1];
        e = e + v * v + dx * dx;
    }
    return e;
}

func main() {
    var seed = getint();
    var steps = getint();
    N = 384;
    c2 = 900;   // stable: c^2 < 1024
    var i; var r = seed;
    // Initial condition: a few random gaussian-ish bumps.
    for (i = 0; i < N; i = i + 1) { u[i] = 0; uPrev[i] = 0; }
    var b;
    for (b = 0; b < 4; b = b + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        var center = 30 + (r % (N - 60));
        var amp = 200 + ((r >> 8) & 255);
        var w;
        for (w = -12; w <= 12; w = w + 1) {
            var h = amp * (144 - w * w) / 144;
            if (h > 0) {
                u[center + w] = u[center + w] + h;
                uPrev[center + w] = uPrev[center + w] + h;
            }
        }
    }
    var s; var sum = 0;
    for (s = 0; s < steps; s = s + 1) {
        stepWave();
        if (s % 16 == 0) {
            sum = (sum * 31 + energy()) & 0xFFFFFF;
            putint(sum & 0xFFF); putchar(' ');
        }
    }
    putint(sum);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "wavef",
		Description: "fixed-point 1-D wave equation stencil (models SPEC95 FP codes)",
		Source:      wavefSrc,
		Test:        Input{Name: "test", Args: []int64{4242, 96}, Want: "4090 2891 1557 1800 2444 3977 7049097\n"},
		Train:       Input{Name: "train", Args: []int64{987001, 144}, Want: "2602 355 3579 3565 66 3875 1873 499 1002 11142122\n"},
	})
}
