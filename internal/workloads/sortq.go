package workloads

// sortq models the data-structure churn of 126.gcc: quicksort with
// middle-element pivots over partially sorted data, heapsort over the
// same data, then a binary-search probe phase. Comparison results and
// loop bounds give the moderate-invariance profile typical of compiler
// internals.
const sortqSrc = `
int a[4096];
int b[4096];
int stk[128];

func lcg(s) { return (s * 1103515245 + 12345) & 2147483647; }

// Mostly sorted data: identity plus k random swaps.
func genData(n, seed, swaps) {
    var i;
    for (i = 0; i < n; i = i + 1) { a[i] = i * 3; }
    var r = seed;
    for (i = 0; i < swaps; i = i + 1) {
        r = lcg(r);
        var x = r % n;
        r = lcg(r);
        var y = r % n;
        var t = a[x]; a[x] = a[y]; a[y] = t;
    }
}

// Iterative quicksort with explicit stack, middle pivot.
func quicksort(n) {
    var sp = 0;
    stk[sp] = 0; stk[sp + 1] = n - 1; sp = sp + 2;
    while (sp > 0) {
        sp = sp - 2;
        var lo = stk[sp]; var hi = stk[sp + 1];
        while (lo < hi) {
            var i = lo; var j = hi;
            var p = a[(lo + hi) / 2];
            while (i <= j) {
                while (a[i] < p) { i = i + 1; }
                while (a[j] > p) { j = j - 1; }
                if (i <= j) {
                    var t = a[i]; a[i] = a[j]; a[j] = t;
                    i = i + 1; j = j - 1;
                }
            }
            // Recurse into the smaller side via the stack.
            if (j - lo < hi - i) {
                if (i < hi && sp < 126) { stk[sp] = i; stk[sp + 1] = hi; sp = sp + 2; }
                hi = j;
            } else {
                if (lo < j && sp < 126) { stk[sp] = lo; stk[sp + 1] = j; sp = sp + 2; }
                lo = i;
            }
        }
    }
}

func siftDown(arr[], start, end) {
    var root = start;
    while (root * 2 + 1 <= end) {
        var child = root * 2 + 1;
        if (child + 1 <= end && arr[child] < arr[child + 1]) { child = child + 1; }
        if (arr[root] < arr[child]) {
            var t = arr[root]; arr[root] = arr[child]; arr[child] = t;
            root = child;
        } else { return 0; }
    }
    return 0;
}

func heapsort(arr[], n) {
    var start = (n - 2) / 2;
    while (start >= 0) {
        siftDown(arr, start, n - 1);
        start = start - 1;
    }
    var end = n - 1;
    while (end > 0) {
        var t = arr[end]; arr[end] = arr[0]; arr[0] = t;
        end = end - 1;
        siftDown(arr, 0, end);
    }
    return 0;
}

func bsearch(arr[], n, key) {
    var lo = 0; var hi = n - 1;
    while (lo <= hi) {
        var mid = (lo + hi) / 2;
        if (arr[mid] == key) { return mid; }
        if (arr[mid] < key) { lo = mid + 1; }
        else { hi = mid - 1; }
    }
    return 0 - 1;
}

func main() {
    var seed = getint();
    var n = getint();
    var swaps = getint();
    var lookups = getint();
    genData(n, seed, swaps);
    var i;
    for (i = 0; i < n; i = i + 1) { b[i] = a[i]; }
    quicksort(n);
    heapsort(b, n);
    // Both sorts must agree.
    var agree = 1;
    for (i = 0; i < n; i = i + 1) {
        if (a[i] != b[i]) { agree = 0; }
    }
    var found = 0; var r = seed + 17;
    for (i = 0; i < lookups; i = i + 1) {
        r = lcg(r);
        if (bsearch(a, n, (r % n) * 3) >= 0) { found = found + 1; }
    }
    var sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = (sum * 7 + a[i]) & 0xFFFFFF; }
    putint(agree); putchar(' ');
    putint(found); putchar(' ');
    putint(sum);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "sortq",
		Description: "quicksort/heapsort/binary-search churn (models 126.gcc data structures)",
		Source:      sortqSrc,
		Test:        Input{Name: "test", Args: []int64{4242, 1500, 120, 400}, Want: "1 400 13719818\n"},
		Train:       Input{Name: "train", Args: []int64{171717, 2500, 300, 700}, Want: "1 700 5475174\n"},
	})
}
