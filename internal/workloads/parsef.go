package workloads

// parsef models a compiler front end (126.gcc / 134.perl parsing): it
// generates random well-formed arithmetic expressions as character
// text, tokenizes them, and evaluates them with a precedence-climbing
// parser driven by an explicit state stack. Character-class loads are
// heavily skewed (digits dominate) and token kinds are semi-invariant —
// front-end value behaviour.
const parsefSrc = `
int text[4096];    // expression characters
int textLen;
int pos;

int rstate;

func lcg() {
    rstate = (rstate * 1103515245 + 12345) & 2147483647;
    return rstate;
}

func emitChar(c) {
    if (textLen < 4095) { text[textLen] = c; textLen = textLen + 1; }
}

// Generate a random expression: genExpr -> term (op term)*
func genNumber() {
    var n = 1 + (lcg() % 3);   // 1-3 digits
    var i;
    for (i = 0; i < n; i = i + 1) {
        emitChar('0' + (lcg() % 10));
    }
}

func genFactor(depth) {
    var r = lcg() % 10;
    if (depth > 0 && r < 3) {
        emitChar('(');
        genSum(depth - 1);
        emitChar(')');
        return 0;
    }
    genNumber();
    return 0;
}

func genTerm(depth) {
    genFactor(depth);
    while (lcg() % 10 < 3) {
        emitChar('*');
        genFactor(depth);
    }
    return 0;
}

func genSum(depth) {
    genTerm(depth);
    while (lcg() % 10 < 4) {
        if (lcg() % 2 == 0) { emitChar('+'); } else { emitChar('-'); }
        genTerm(depth);
    }
    return 0;
}

// --- parser/evaluator over the character buffer ---

func peek() {
    if (pos >= textLen) { return 0; }
    return text[pos];
}

func isDigit(c) { return c >= '0' && c <= '9'; }

func parseNumber() {
    var v = 0;
    while (isDigit(peek())) {
        v = (v * 10 + (text[pos] - '0')) % 1000000007;
        pos = pos + 1;
    }
    return v;
}

func parseFactor() {
    if (peek() == '(') {
        pos = pos + 1;     // consume '('
        var v = parseSum();
        if (peek() == ')') { pos = pos + 1; }
        return v;
    }
    return parseNumber();
}

func parseTerm() {
    var v = parseFactor();
    while (peek() == '*') {
        pos = pos + 1;
        v = (v * parseFactor()) % 1000000007;
    }
    return v;
}

func parseSum() {
    var v = parseTerm();
    while (peek() == '+' || peek() == '-') {
        var op = text[pos];
        pos = pos + 1;
        var w = parseTerm();
        if (op == '+') { v = (v + w) % 1000000007; }
        else { v = (v - w + 1000000007) % 1000000007; }
    }
    return v;
}

// Character-class histogram over the text (front-end table lookups).
int classCount[4];   // 0 digit, 1 operator, 2 paren, 3 other
func classify() {
    var i;
    for (i = 0; i < textLen; i = i + 1) {
        var c = text[i];
        if (isDigit(c)) { classCount[0] = classCount[0] + 1; }
        else if (c == '+' || c == '-' || c == '*') { classCount[1] = classCount[1] + 1; }
        else if (c == '(' || c == ')') { classCount[2] = classCount[2] + 1; }
        else { classCount[3] = classCount[3] + 1; }
    }
}

func main() {
    var seed = getint();
    var exprs = getint();
    rstate = seed;
    var e; var acc = 0;
    for (e = 0; e < exprs; e = e + 1) {
        textLen = 0;
        genSum(3);
        classify();
        pos = 0;
        acc = (acc * 131 + parseSum()) % 1000000007;
    }
    putint(acc); putchar(' ');
    putint(classCount[0]); putchar(' ');
    putint(classCount[1]); putchar(' ');
    putint(classCount[2]);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "parsef",
		Description: "expression tokenizer and recursive parser (models 126.gcc front end)",
		Source:      parsefSrc,
		Test:        Input{Name: "test", Args: []int64{60601, 700}, Want: "714455216 6865 2756 2304\n"},
		Train:       Input{Name: "train", Args: []int64{31415926, 1000}, Want: "101244153 9236 3643 3090\n"},
	})
}
