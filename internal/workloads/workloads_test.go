package workloads

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registry has %d workloads, want 10", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		names[w.Name] = true
		if w.Description == "" || w.Source == "" {
			t.Errorf("%s: missing description or source", w.Name)
		}
		if w.Test.Want == "" || w.Train.Want == "" {
			t.Errorf("%s: missing golden outputs", w.Name)
		}
		if w.Test.Name != "test" || w.Train.Name != "train" {
			t.Errorf("%s: input names %q/%q", w.Name, w.Test.Name, w.Train.Name)
		}
	}
	for _, want := range []string{"compress", "bytecode", "mcsim", "gosearch", "imagef", "dictv", "sortq", "lifegrid", "wavef", "parsef"} {
		if !names[want] {
			t.Errorf("missing workload %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("compress"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

// TestAllRunSelfChecking compiles and runs every workload on both data
// sets, verifying the recorded golden output (the SPEC-style output
// validation the paper's runs relied on).
func TestAllRunSelfChecking(t *testing.T) {
	for _, w := range All() {
		for _, in := range w.Inputs() {
			t.Run(w.Name+"/"+in.Name, func(t *testing.T) {
				res, err := w.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				if res.InstCount < 100000 {
					t.Errorf("suspiciously small run: %d instructions", res.InstCount)
				}
			})
		}
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	w, err := ByName("dictv")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := w.Run(w.Test)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Run(w.Test)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output || r1.InstCount != r2.InstCount || r1.Cycles != r2.Cycles {
		t.Errorf("nondeterministic run: %+v vs %+v", r1, r2)
	}
}

func TestTestAndTrainDiffer(t *testing.T) {
	// The two data sets must exercise the same code with different
	// data, so outputs must differ (same-output inputs would make the
	// cross-input experiments vacuous).
	for _, w := range All() {
		if w.Test.Want == w.Train.Want {
			t.Errorf("%s: test and train outputs identical", w.Name)
		}
	}
}

// --- Differential tests against independent Go reference implementations ---

func lcgRef(s int64) int64 { return (s*1103515245 + 12345) & 2147483647 }

// TestLifegridAgainstReference recomputes the lifegrid output in Go.
func TestLifegridAgainstReference(t *testing.T) {
	ref := func(seed, gens, fillPct int64) string {
		const N = 40
		grid := make([]int64, N*N)
		next := make([]int64, N*N)
		r := seed
		for i := range grid {
			r = lcgRef(r)
			if (r>>16)%100 < fillPct {
				grid[i] = 1
			}
		}
		idx := func(r, c int) int {
			return ((r+N)%N)*N + (c+N)%N
		}
		var out strings.Builder
		var sum int64
		for g := int64(0); g < gens; g++ {
			var pop int64
			for rr := 0; rr < N; rr++ {
				for cc := 0; cc < N; cc++ {
					nb := grid[idx(rr-1, cc-1)] + grid[idx(rr-1, cc)] + grid[idx(rr-1, cc+1)] +
						grid[idx(rr, cc-1)] + grid[idx(rr, cc+1)] +
						grid[idx(rr+1, cc-1)] + grid[idx(rr+1, cc)] + grid[idx(rr+1, cc+1)]
					alive := grid[rr*N+cc]
					var o int64
					if alive == 1 && (nb == 2 || nb == 3) {
						o = 1
					}
					if alive == 0 && nb == 3 {
						o = 1
					}
					next[rr*N+cc] = o
					pop += o
				}
			}
			copy(grid, next)
			sum = (sum*13 + pop) & 0xFFFFFF
			if g%4 == 0 {
				fmt.Fprintf(&out, "%d ", pop)
			}
		}
		fmt.Fprintf(&out, "%d\n", sum)
		return out.String()
	}
	w, err := ByName("lifegrid")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range w.Inputs() {
		want := ref(in.Args[0], in.Args[1], in.Args[2])
		res, err := w.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want {
			t.Errorf("%s: MiniC output %q != Go reference %q", in.Name, res.Output, want)
		}
	}
}

// TestSortqAgainstReference recomputes the sortq output in Go (sorting
// is order-insensitive to algorithm, so plain sort suffices for the
// checksum; agree/found are recomputed directly).
func TestSortqAgainstReference(t *testing.T) {
	ref := func(seed, n, swaps, lookups int64) string {
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(i) * 3
		}
		r := seed
		for i := int64(0); i < swaps; i++ {
			r = lcgRef(r)
			x := r % n
			r = lcgRef(r)
			y := r % n
			a[x], a[y] = a[y], a[x]
		}
		// After sorting, a is again 0,3,6,...
		sorted := make([]int64, n)
		for i := range sorted {
			sorted[i] = int64(i) * 3
		}
		found := 0
		r = seed + 17
		for i := int64(0); i < lookups; i++ {
			r = lcgRef(r)
			key := (r % n) * 3
			// key is always a multiple of 3 within range: always found.
			if key >= 0 && key < n*3 {
				found++
			}
		}
		var sum int64
		for _, v := range sorted {
			sum = (sum*7 + v) & 0xFFFFFF
		}
		return fmt.Sprintf("1 %d %d\n", found, sum)
	}
	w, err := ByName("sortq")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range w.Inputs() {
		want := ref(in.Args[0], in.Args[1], in.Args[2], in.Args[3])
		res, err := w.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != want {
			t.Errorf("%s: MiniC output %q != Go reference %q", in.Name, res.Output, want)
		}
	}
}

// TestMcsimAgainstReference recomputes the gcd-driver output in Go.
func TestMcsimAgainstReference(t *testing.T) {
	w, err := ByName("mcsim")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range w.Inputs() {
		seed, pairs := in.Args[0], in.Args[1]
		r := seed
		var outsum, nout int64
		for i := int64(0); i < pairs; i++ {
			r = lcgRef(r)
			a := 1 + r%9973
			r = lcgRef(r)
			b := 1 + r%9973
			for b != 0 {
				a, b = b, a%b
			}
			outsum = (outsum*31 + a) & 0xFFFFFF
			nout++
		}
		res, err := w.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		var gn, gs, steps int64
		if _, err := fmt.Sscanf(res.Output, "%d %d %d", &gn, &gs, &steps); err != nil {
			t.Fatalf("parse %q: %v", res.Output, err)
		}
		if gn != nout || gs != outsum {
			t.Errorf("%s: sim nout/outsum = %d/%d, reference %d/%d", in.Name, gn, gs, nout, outsum)
		}
		if steps <= 0 {
			t.Errorf("%s: nonpositive step count %d", in.Name, steps)
		}
	}
}

func TestCompileCaching(t *testing.T) {
	w, err := ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Compile did not cache")
	}
}

func TestOutputMismatchDetected(t *testing.T) {
	w, err := ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	bad := Input{Name: "bad", Args: w.Test.Args, Want: "wrong\n"}
	if _, err := w.Run(bad); err == nil || !strings.Contains(err.Error(), "output mismatch") {
		t.Errorf("mismatch not detected: %v", err)
	}
}
