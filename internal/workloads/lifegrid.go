package workloads

// lifegrid runs Conway's Game of Life on a toroidal 40x40 grid. Cell
// loads are strongly skewed toward 0 (sparse populations), making it a
// good %Zero stressor, and the rule constants are invariant.
const lifegridSrc = `
int grid[1600];
int next[1600];

int N;

func idx(r, c) {
    if (r < 0) { r = r + N; }
    if (r >= N) { r = r - N; }
    if (c < 0) { c = c + N; }
    if (c >= N) { c = c - N; }
    return r * N + c;
}

func stepGen() {
    var r; var c;
    var pop = 0;
    for (r = 0; r < N; r = r + 1) {
        for (c = 0; c < N; c = c + 1) {
            var nb = grid[idx(r-1,c-1)] + grid[idx(r-1,c)] + grid[idx(r-1,c+1)]
                   + grid[idx(r,c-1)]                      + grid[idx(r,c+1)]
                   + grid[idx(r+1,c-1)] + grid[idx(r+1,c)] + grid[idx(r+1,c+1)];
            var alive = grid[r * N + c];
            var out = 0;
            if (alive == 1 && (nb == 2 || nb == 3)) { out = 1; }
            if (alive == 0 && nb == 3) { out = 1; }
            next[r * N + c] = out;
            pop = pop + out;
        }
    }
    for (r = 0; r < N * N; r = r + 1) { grid[r] = next[r]; }
    return pop;
}

func main() {
    var seed = getint();
    var gens = getint();
    var fillPct = getint();
    N = 40;
    var r = seed; var i;
    for (i = 0; i < N * N; i = i + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        if ((r >> 16) % 100 < fillPct) { grid[i] = 1; } else { grid[i] = 0; }
    }
    var g; var pop = 0; var sum = 0;
    for (g = 0; g < gens; g = g + 1) {
        pop = stepGen();
        sum = (sum * 13 + pop) & 0xFFFFFF;
        if (g % 4 == 0) { putint(pop); putchar(' '); }
    }
    putint(sum);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "lifegrid",
		Description: "Game of Life on a 40x40 torus (loop-heavy, zero-skewed loads)",
		Source:      lifegridSrc,
		Test:        Input{Name: "test", Args: []int64{90125, 10, 30}, Want: "562 419 387 285140\n"},
		Train:       Input{Name: "train", Args: []int64{65537, 14, 35}, Want: "602 443 359 366 14975269\n"},
	})
}
