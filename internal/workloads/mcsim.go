package workloads

// mcsim models 124.m88ksim: a simulator for a tiny 16-register machine
// whose instruction words are decoded with field arithmetic. The
// simulated program computes gcd chains; the simulator's decode fields
// (opcode, register numbers) are the paper's canonical semi-invariant
// instruction results.
const mcsimSrc = `
// Simulated machine: 16 registers, word-encoded instructions
//   word = op*4096 + rd*256 + ra*16 + rb
// ops: 0 HALT | 1 LI rd,(ra*16+rb as 8-bit imm) | 2 ADD | 3 SUB
//      4 MUL | 5 REM | 6 BEQZ ra, target(rd*16+rb) | 7 BNEZ
//      8 MOV rd, ra | 9 OUT ra (accumulate checksum)

int imem[128];
int regs[16];
int nout;
int outsum;

func enc(op, rd, ra, rb) {
    return ((op * 16 + rd) * 16 + ra) * 16 + rb;
}

// gcd program:
//   r1 = a (set by driver), r2 = b
//   loop(@0): beqz r2 -> @4
//     r3 = r1 % r2 ; r1 = r2 ; r2 = r3 ; jmp loop
//   @4: out r1; halt
func buildGcd() {
    imem[0] = enc(6, 0, 2, 5);   // beqz r2, 5   (target = 0*16+5)
    imem[1] = enc(5, 3, 1, 2);   // r3 = r1 rem r2
    imem[2] = enc(8, 1, 2, 0);   // r1 = r2
    imem[3] = enc(8, 2, 3, 0);   // r2 = r3
    imem[4] = enc(7, 0, 1, 0);   // bnez r1, 0   (loop; r1 never 0 here)
    imem[5] = enc(9, 0, 1, 0);   // out r1
    imem[6] = enc(0, 0, 0, 0);   // halt
}

func sim(maxSteps) {
    var pc = 0; var steps = 0;
    var w; var op; var rd; var ra; var rb;
    while (steps < maxSteps) {
        steps = steps + 1;
        w = imem[pc];
        op = w / 4096;
        rd = (w / 256) % 16;
        ra = (w / 16) % 16;
        rb = w % 16;
        pc = pc + 1;
        if (op == 0) { return steps; }
        if (op == 1) { regs[rd] = ra * 16 + rb; continue; }
        if (op == 2) { regs[rd] = regs[ra] + regs[rb]; continue; }
        if (op == 3) { regs[rd] = regs[ra] - regs[rb]; continue; }
        if (op == 4) { regs[rd] = regs[ra] * regs[rb]; continue; }
        if (op == 5) { regs[rd] = regs[ra] % regs[rb]; continue; }
        if (op == 6) { if (regs[ra] == 0) { pc = rd * 16 + rb; } continue; }
        if (op == 7) { if (regs[ra] != 0) { pc = rd * 16 + rb; } continue; }
        if (op == 8) { regs[rd] = regs[ra]; continue; }
        if (op == 9) {
            outsum = (outsum * 31 + regs[ra]) & 0xFFFFFF;
            nout = nout + 1;
            continue;
        }
        return 0 - steps;
    }
    return steps;
}

func main() {
    var seed = getint();
    var pairs = getint();
    var r = seed; var i; var a; var b; var totalSteps = 0;
    buildGcd();
    for (i = 0; i < pairs; i = i + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        a = 1 + (r % 9973);
        r = (r * 1103515245 + 12345) & 2147483647;
        b = 1 + (r % 9973);
        regs[1] = a; regs[2] = b;
        totalSteps = totalSteps + sim(100000);
    }
    putint(nout); putchar(' ');
    putint(outsum); putchar(' ');
    putint(totalSteps);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "mcsim",
		Description: "register-machine simulator running gcd chains (models 124.m88ksim)",
		Source:      mcsimSrc,
		Test:        Input{Name: "test", Args: []int64{42, 400}, Want: "400 9496244 16775\n"},
		Train:       Input{Name: "train", Args: []int64{987654321, 600}, Want: "600 4335816 25515\n"},
	})
}
