package workloads

// imagef models 132.ijpeg: image generation, 3x3 convolution passes,
// quantization against a constant table, and a histogram. Kernel
// weights and quantization thresholds are invariant loads; pixel values
// are variant — the mix the paper saw for image codecs.
const imagefSrc = `
int img[2304];     // 48x48
int tmp[2304];
int kern[9];
int quant[16];
int hist[16];

int W;

func pix(buf[], r, c) {
    if (r < 0) { r = 0; }
    if (c < 0) { c = 0; }
    if (r >= W) { r = W - 1; }
    if (c >= W) { c = W - 1; }
    return buf[r * W + c];
}

func genImage(seed) {
    var r = seed; var i;
    for (i = 0; i < W * W; i = i + 1) {
        r = (r * 1103515245 + 12345) & 2147483647;
        // smooth-ish gradient plus noise
        img[i] = ((i / W) * 3 + (i % W) * 2 + ((r >> 12) & 31)) % 256;
    }
}

func convolve() {
    var r; var c; var k;
    for (r = 0; r < W; r = r + 1) {
        for (c = 0; c < W; c = c + 1) {
            var acc = 0;
            for (k = 0; k < 9; k = k + 1) {
                acc = acc + kern[k] * pix(img, r + k / 3 - 1, c + k % 3 - 1);
            }
            acc = acc / 16;
            if (acc < 0) { acc = 0; }
            if (acc > 255) { acc = 255; }
            tmp[r * W + c] = acc;
        }
    }
    for (r = 0; r < W * W; r = r + 1) { img[r] = tmp[r]; }
}

func quantize() {
    var i; var q;
    for (i = 0; i < 16; i = i + 1) { hist[i] = 0; }
    for (i = 0; i < W * W; i = i + 1) {
        q = 0;
        while (q < 15 && img[i] >= quant[q]) { q = q + 1; }
        hist[q] = hist[q] + 1;
    }
}

func main() {
    var seed = getint();
    var passes = getint();
    W = 48;
    // Gaussian-ish kernel, sums to 16.
    kern[0] = 1; kern[1] = 2; kern[2] = 1;
    kern[3] = 2; kern[4] = 4; kern[5] = 2;
    kern[6] = 1; kern[7] = 2; kern[8] = 1;
    var i;
    for (i = 0; i < 16; i = i + 1) { quant[i] = 16 * (i + 1); }
    genImage(seed);
    var p;
    for (p = 0; p < passes; p = p + 1) {
        convolve();
    }
    quantize();
    var sum = 0;
    for (i = 0; i < 16; i = i + 1) {
        putint(hist[i]); putchar(' ');
        sum = (sum * 17 + hist[i]) & 0xFFFFFF;
    }
    putint(sum);
    putchar(10);
}
`

func init() {
	register(&Workload{
		Name:        "imagef",
		Description: "48x48 image convolution and quantization (models 132.ijpeg)",
		Source:      imagefSrc,
		Test:        Input{Name: "test", Args: []int64{2024, 3}, Want: "2 34 72 121 140 232 228 252 261 249 246 164 147 107 49 0 13188304\n"},
		Train:       Input{Name: "train", Args: []int64{555555, 4}, Want: "0 37 82 106 160 196 244 270 246 274 210 183 134 105 54 3 10221472\n"},
	})
}
