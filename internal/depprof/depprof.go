// Package depprof implements memory-dependence (store→load
// communication) profiling, the profiling use the thesis attributes to
// Reinman et al. [31] ("a load which is directly dependent upon a store
// might be able to bypass memory by using the value of the store
// directly") and connects to Moudgill & Moreno's value-checked load
// rescheduling [29] ("value profiling could support [their] approach to
// only reschedule loads with a high invariance").
//
// For every load execution the profiler finds the store that produced
// the loaded bytes, records the (load-pc ← store-pc) communication edge
// in a TNV table, and tracks the forwarding distance in instructions.
// Loads whose value mostly arrives from one nearby store are bypass
// candidates; loads with high value invariance are safe rescheduling
// candidates under value checking.
package depprof

import (
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Options configures a DepProfiler.
type Options struct {
	// Window is the forwarding reach in dynamic instructions: a load
	// within Window instructions of its producing store could have
	// been satisfied by forwarding (a store queue/buffer reach).
	Window uint64
	// TNV sizes the per-load communication-edge tables.
	TNV core.TNVConfig
}

// DefaultOptions uses a 256-instruction forwarding window.
func DefaultOptions() Options {
	return Options{Window: 256, TNV: core.DefaultTNVConfig()}
}

// LoadStats is the dependence profile of one load site.
type LoadStats struct {
	PC   int
	Name string

	Execs uint64
	// FromStore counts executions whose loaded bytes were written by
	// an observed store (rather than initial data or input).
	FromStore uint64
	// Forwardable counts executions whose producing store was within
	// the window.
	Forwardable uint64
	// Edges profiles the producing store pc per execution; its top
	// entry is the dominant communication edge.
	Edges *core.TNVTable
	// DistSum accumulates forwarding distances (for the mean).
	DistSum uint64
}

// MeanDistance returns the mean store→load distance in instructions
// over executions fed by a store.
func (l *LoadStats) MeanDistance() float64 {
	if l.FromStore == 0 {
		return 0
	}
	return float64(l.DistSum) / float64(l.FromStore)
}

// EdgeInvariance returns the fraction of store-fed executions coming
// from the single dominant store site.
func (l *LoadStats) EdgeInvariance() float64 {
	if l.FromStore == 0 {
		return 0
	}
	_, c, ok := l.Edges.TopValue()
	if !ok {
		return 0
	}
	return float64(c) / float64(l.FromStore)
}

type storeRec struct {
	pc   int
	inst uint64
}

// DepProfiler is the ATOM tool.
type DepProfiler struct {
	opts  Options
	last  map[uint64]storeRec // address (byte) -> producing store
	loads map[int]*LoadStats
}

// New creates a dependence profiler.
func New(opts Options) *DepProfiler {
	if opts.Window == 0 {
		opts.Window = 256
	}
	if opts.TNV.Size == 0 {
		opts.TNV = core.DefaultTNVConfig()
	}
	return &DepProfiler{
		opts:  opts,
		last:  make(map[uint64]storeRec),
		loads: make(map[int]*LoadStats),
	}
}

func accessSize(op isa.Op) uint64 {
	switch op {
	case isa.OpLdq, isa.OpStq:
		return 8
	case isa.OpLdl, isa.OpStl:
		return 4
	default:
		return 1
	}
}

// Instrument implements atom.Tool.
func (d *DepProfiler) Instrument(ix *atom.Instrumenter) {
	ix.ForEachInst(func(in isa.Inst) bool { return in.Op.Class() == isa.ClassStore },
		func(pc int, in isa.Inst) {
			size := accessSize(in.Op)
			ix.AddAfter(pc, func(ev *vm.Event) {
				rec := storeRec{pc: pc, inst: ev.VM.InstCount}
				for b := uint64(0); b < size; b++ {
					d.last[ev.Addr+b] = rec
				}
			})
		})
	ix.ForEachInst(func(in isa.Inst) bool { return in.Op.Class() == isa.ClassLoad },
		func(pc int, in isa.Inst) {
			ls := &LoadStats{PC: pc, Name: ix.Prog.SiteName(pc), Edges: core.NewTNV(d.opts.TNV)}
			d.loads[pc] = ls
			size := accessSize(in.Op)
			ix.AddAfter(pc, func(ev *vm.Event) {
				ls.Execs++
				// The youngest store covering any loaded byte is the
				// producer (partial overlaps count as the dependence).
				var prod storeRec
				found := false
				for b := uint64(0); b < size; b++ {
					if rec, ok := d.last[ev.Addr+b]; ok {
						if !found || rec.inst > prod.inst {
							prod = rec
							found = true
						}
					}
				}
				if !found {
					return
				}
				ls.FromStore++
				ls.Edges.Add(int64(prod.pc))
				dist := ev.VM.InstCount - prod.inst
				ls.DistSum += dist
				if dist <= d.opts.Window {
					ls.Forwardable++
				}
			})
		})
}

// Report is the result of a dependence-profiling run.
type Report struct {
	Loads  []*LoadStats // sorted by execs descending
	Window uint64
}

// Report returns the per-load results.
func (d *DepProfiler) Report() *Report {
	out := make([]*LoadStats, 0, len(d.loads))
	for _, l := range d.loads {
		if l.Execs > 0 {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Execs != out[j].Execs {
			return out[i].Execs > out[j].Execs
		}
		return out[i].PC < out[j].PC
	})
	return &Report{Loads: out, Window: d.opts.Window}
}

// Totals aggregates over all load executions: the fractions fed by a
// store at all, forwardable within the window, and arriving over the
// dominant edge.
func (r *Report) Totals() (fromStore, forwardable, dominantEdge float64) {
	var execs, fs, fw, dom float64
	for _, l := range r.Loads {
		execs += float64(l.Execs)
		fs += float64(l.FromStore)
		fw += float64(l.Forwardable)
		dom += l.EdgeInvariance() * float64(l.FromStore)
	}
	if execs == 0 {
		return 0, 0, 0
	}
	if fs > 0 {
		dom /= fs
	}
	return fs / execs, fw / execs, dom
}

// BypassCandidates returns loads executed at least minExecs times whose
// forwardable fraction is at least thresh — the store-bypass set.
func (r *Report) BypassCandidates(minExecs uint64, thresh float64) []*LoadStats {
	var out []*LoadStats
	for _, l := range r.Loads {
		if l.Execs >= minExecs && float64(l.Forwardable)/float64(l.Execs) >= thresh {
			out = append(out, l)
		}
	}
	return out
}
