package depprof

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
)

// main stores to cell then immediately loads it (tight edge), and
// loads initc which is never stored (data-segment value).
const depSrc = `
        .proc main
main:   li s0, 100
        la s1, cell
loop:   stq s0, 0(s1)
        ldq t0, 0(s1)
        ldq t1, initc
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
        .data
cell:   .word 0
initc:  .word 77
`

// pcs: 0 li | 1 la | 2 stq | 3 ldq cell | 4 ldq initc | 5 addi | 6 bne | 7 exit

func runDep(t *testing.T, opts Options) *Report {
	t.Helper()
	prog, err := asm.Assemble(depSrc)
	if err != nil {
		t.Fatal(err)
	}
	dp := New(opts)
	if _, err := atom.Run(prog, nil, false, dp); err != nil {
		t.Fatal(err)
	}
	return dp.Report()
}

func loadAt(r *Report, pc int) *LoadStats {
	for _, l := range r.Loads {
		if l.PC == pc {
			return l
		}
	}
	return nil
}

func TestStoreFedLoadDetected(t *testing.T) {
	r := runDep(t, DefaultOptions())
	fed := loadAt(r, 3)
	if fed == nil || fed.Execs != 100 {
		t.Fatalf("fed load: %+v", fed)
	}
	if fed.FromStore != 100 || fed.Forwardable != 100 {
		t.Errorf("fromStore=%d forwardable=%d, want 100/100", fed.FromStore, fed.Forwardable)
	}
	if fed.EdgeInvariance() != 1.0 {
		t.Errorf("edge invariance = %v (single producer)", fed.EdgeInvariance())
	}
	if top, _, _ := fed.Edges.TopValue(); top != 2 {
		t.Errorf("dominant producer pc = %d, want 2", top)
	}
	if d := fed.MeanDistance(); d != 1 {
		t.Errorf("mean distance = %v, want 1", d)
	}
}

func TestUnfedLoad(t *testing.T) {
	r := runDep(t, DefaultOptions())
	unfed := loadAt(r, 4)
	if unfed.FromStore != 0 || unfed.Forwardable != 0 {
		t.Errorf("initial-data load marked store-fed: %+v", unfed)
	}
	if unfed.MeanDistance() != 0 || unfed.EdgeInvariance() != 0 {
		t.Error("empty stats nonzero")
	}
}

func TestWindowLimitsForwarding(t *testing.T) {
	// Window 1: the store is 1 instruction before the load, so it
	// still forwards; window 0 defaults back to 256, so craft with a
	// far load: store once, loop loads.
	src := `
        .proc main
main:   li s0, 50
        la s1, cell
        li t0, 9
        stq t0, 0(s1)
loop:   ldq t1, 0(s1)
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
        .data
cell:   .word 0
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dp := New(Options{Window: 5})
	if _, err := atom.Run(prog, nil, false, dp); err != nil {
		t.Fatal(err)
	}
	r := dp.Report()
	ld := loadAt(r, 4)
	if ld == nil || ld.Execs != 50 {
		t.Fatalf("load: %+v", ld)
	}
	if ld.FromStore != 50 {
		t.Errorf("fromStore = %d", ld.FromStore)
	}
	// Only the first couple of iterations are within 5 instructions of
	// the store; later ones exceed the window.
	if ld.Forwardable == 0 || ld.Forwardable >= 10 {
		t.Errorf("forwardable = %d, want a small nonzero count", ld.Forwardable)
	}
}

func TestPartialOverlapByteStore(t *testing.T) {
	// A byte store into the middle of a word must count as the
	// producer of the whole-word load.
	src := `
        .proc main
main:   la s1, cell
        li t0, 0xAB
        stb t0, 3(s1)
        ldq t1, 0(s1)
        syscall exit
        .endproc
        .data
cell:   .word 0
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dp := New(DefaultOptions())
	if _, err := atom.Run(prog, nil, false, dp); err != nil {
		t.Fatal(err)
	}
	ld := loadAt(dp.Report(), 3)
	if ld.FromStore != 1 {
		t.Errorf("partial overlap missed: %+v", ld)
	}
}

func TestTotalsAndCandidates(t *testing.T) {
	r := runDep(t, DefaultOptions())
	fromStore, forwardable, dom := r.Totals()
	// Half the load executions (cell) are store-fed; initc never.
	if fromStore < 0.49 || fromStore > 0.51 {
		t.Errorf("fromStore = %v, want ~0.5", fromStore)
	}
	if forwardable != fromStore {
		t.Errorf("forwardable %v != fromStore %v (all within window)", forwardable, fromStore)
	}
	if dom != 1.0 {
		t.Errorf("dominant edge = %v", dom)
	}
	cands := r.BypassCandidates(50, 0.9)
	if len(cands) != 1 || cands[0].PC != 3 {
		t.Errorf("bypass candidates = %+v", cands)
	}
}
