// Package atom is an ATOM-like instrumentation toolkit (Srivastava &
// Eustace [35]), the interface the paper used to build its value
// profiler. A Tool walks the elements of a program — procedures, basic
// blocks, instructions — and attaches analysis routines that the VM
// invokes during execution with the run-time values the paper profiled
// (destination register values, load values, store values, parameter
// registers at procedure entry).
package atom

import (
	"context"
	"time"

	"valueprof/internal/isa"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// Tool instruments a program by attaching analysis routines through the
// Instrumenter.
type Tool interface {
	Instrument(ix *Instrumenter)
}

// ToolFunc adapts a function to the Tool interface.
type ToolFunc func(ix *Instrumenter)

func (f ToolFunc) Instrument(ix *Instrumenter) { f(ix) }

// Instrumenter exposes the program's structure and the attachment
// points. It wraps one VM instance, so the same program can be
// instrumented differently across runs.
type Instrumenter struct {
	Prog *program.Program
	VM   *vm.VM
}

// Procedures returns the program's procedure table.
func (ix *Instrumenter) Procedures() []program.Proc { return ix.Prog.Procs }

// BasicBlocks returns the basic-block decomposition.
func (ix *Instrumenter) BasicBlocks() *program.BlockSet { return ix.Prog.BasicBlocks() }

// Inst returns the instruction at pc.
func (ix *Instrumenter) Inst(pc int) isa.Inst { return ix.Prog.Code[pc] }

// NumInsts returns the code segment length.
func (ix *Instrumenter) NumInsts() int { return len(ix.Prog.Code) }

// AddBefore attaches an analysis routine before instruction pc.
func (ix *Instrumenter) AddBefore(pc int, fn vm.Hook) { ix.VM.HookBefore(pc, fn) }

// AddAfter attaches an analysis routine after instruction pc; the event
// carries the instruction's result value (destination register or
// stored value) and effective address for memory operations.
func (ix *Instrumenter) AddAfter(pc int, fn vm.Hook) { ix.VM.HookAfter(pc, fn) }

// AddAfterBuffered attaches a batched value sink after instruction pc:
// the VM pushes the instruction's result value into b and the analysis
// receives it later, in execution order, when the buffer flushes. This
// is the cheap form of AddAfter for tools that only need the value
// stream; tools that must act at the exact instruction (samplers,
// checkpointers) still use AddAfter. The caller owns flushing at run
// end (see vm.ValueBuffer).
func (ix *Instrumenter) AddAfterBuffered(pc int, b *vm.ValueBuffer) {
	ix.VM.HookAfterBuffered(pc, b)
}

// AddProcEntry attaches an analysis routine at procedure entry; the
// argument registers a0..a5 are live in the event's VM at call time.
func (ix *Instrumenter) AddProcEntry(p program.Proc, fn vm.Hook) {
	ix.VM.HookBefore(p.Start, fn)
}

// AddProgramEnd attaches an analysis routine that runs when the program
// exits (ATOM's AddCallProgram(ProgramEnd, ...)). End routines also run
// when a controlled run stops early, so tools can finalize partial
// state.
func (ix *Instrumenter) AddProgramEnd(fn vm.Hook) { ix.VM.HookEnd(fn) }

// AddStep attaches a per-instruction control routine; returning an
// error stops the run (see vm.StepFn). Checkpointing and fault
// injection attach here.
func (ix *Instrumenter) AddStep(fn vm.StepFn) { ix.VM.HookStep(fn) }

// ForEachInst invokes visit for every instruction whose opcode
// satisfies keep (nil keeps all). This is the idiom the paper's
// profiler used to select the instruction classes to value-profile.
func (ix *Instrumenter) ForEachInst(keep func(isa.Inst) bool, visit func(pc int, in isa.Inst)) {
	for pc, in := range ix.Prog.Code {
		if keep == nil || keep(in) {
			visit(pc, in)
		}
	}
}

// RunOptions configures a controlled, fault-tolerant run.
type RunOptions struct {
	Input []int64
	// ChargeHooks selects whether analysis calls cost simulated cycles
	// (used by the overhead experiments).
	ChargeHooks bool
	// StepLimit bounds executed instructions; 0 keeps the VM default.
	StepLimit uint64
	// MemSize is the guest memory budget in bytes; 0 keeps the VM
	// default.
	MemSize int
	// Deadline, when non-zero, stops the run with vm.OutcomeDeadline
	// once the wall clock passes it.
	Deadline time.Time
	// Quantum is the instruction interval between cancellation and
	// deadline checks; 0 selects vm.DefaultQuantum.
	Quantum uint64
}

// EffectiveMemSize resolves the guest memory budget, substituting the
// VM default for the zero value. Arena callers size reused VMs with it
// so ResetFor and Prepare agree on the memory image.
func (o RunOptions) EffectiveMemSize() int {
	if o.MemSize <= 0 {
		return vm.DefaultMemSize
	}
	return o.MemSize
}

// Prepare builds an instrumented VM without running it: it creates the
// VM per opts, attaches every tool, and returns the VM ready for
// RunControlled. Callers that need to restore a checkpointed snapshot
// do so between Prepare and running.
func Prepare(prog *program.Program, opts RunOptions, tools ...Tool) *vm.VM {
	return PrepareOn(vm.NewSized(prog, opts.EffectiveMemSize()), opts, tools...)
}

// PrepareOn instruments an existing VM instead of allocating one: the
// reuse counterpart of Prepare for pooled execution. The caller must
// already have put v into its initial state for the right program —
// either freshly created, or rewound with v.ResetFor(prog,
// opts.EffectiveMemSize()) — and PrepareOn then applies the run
// options and attaches every tool exactly as Prepare would.
func PrepareOn(v *vm.VM, opts RunOptions, tools ...Tool) *vm.VM {
	v.Input = opts.Input
	v.ChargeHooks = opts.ChargeHooks
	if opts.StepLimit > 0 {
		v.StepLimit = opts.StepLimit
	}
	v.Deadline = opts.Deadline
	v.Quantum = opts.Quantum
	ix := &Instrumenter{Prog: v.Prog, VM: v}
	for _, t := range tools {
		t.Instrument(ix)
	}
	return v
}

// RunControlled instruments prog with the given tools and executes it
// under ctx and opts. Unlike Run it never discards the run: the
// returned Result summarizes whatever prefix executed, the outcome
// classifies how the run ended, and every tool's accumulated state
// remains valid for salvage. err is nil iff outcome is
// vm.OutcomeCompleted.
func RunControlled(ctx context.Context, prog *program.Program, opts RunOptions, tools ...Tool) (*vm.Result, vm.RunOutcome, error) {
	v := Prepare(prog, opts, tools...)
	outcome, err := v.RunControlled(ctx)
	return vm.ResultOf(v, outcome), outcome, err
}

// Run instruments prog with the given tools and executes it on input.
// chargeHooks selects whether analysis calls cost simulated cycles
// (used by the overhead experiments). On error the returned Result
// still summarizes the partial run.
func Run(prog *program.Program, input []int64, chargeHooks bool, tools ...Tool) (*vm.Result, error) {
	res, _, err := RunControlled(context.Background(), prog,
		RunOptions{Input: input, ChargeHooks: chargeHooks}, tools...)
	return res, err
}
