package atom

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

const toolSrc = `
        .proc main
main:   li s0, 5
loop:   jsr f
        addi s0, s0, -1
        bne s0, loop
        syscall exit
        .endproc
        .proc f
f:      li v0, 9
        ldq t0, cell
        ret
        .endproc
        .data
cell:   .word 33
`

func TestInstrumenterTraversal(t *testing.T) {
	prog, err := asm.Assemble(toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	var procNames []string
	var loadPCs []int
	var nInsts int
	tool := ToolFunc(func(ix *Instrumenter) {
		for _, p := range ix.Procedures() {
			procNames = append(procNames, p.Name)
		}
		nInsts = ix.NumInsts()
		ix.ForEachInst(func(in isa.Inst) bool { return in.Op.Class() == isa.ClassLoad },
			func(pc int, in isa.Inst) { loadPCs = append(loadPCs, pc) })
		if ix.BasicBlocks() == nil {
			t.Error("no basic blocks")
		}
		if ix.Inst(0).Op != isa.OpAddi {
			t.Errorf("Inst(0) = %v", ix.Inst(0))
		}
	})
	if _, err := Run(prog, nil, false, tool); err != nil {
		t.Fatal(err)
	}
	if len(procNames) != 2 || procNames[0] != "main" || procNames[1] != "f" {
		t.Errorf("procs = %v", procNames)
	}
	if nInsts != len(prog.Code) {
		t.Errorf("NumInsts = %d", nInsts)
	}
	if len(loadPCs) != 1 {
		t.Errorf("loads = %v", loadPCs)
	}
}

func TestHookKindsFire(t *testing.T) {
	prog, err := asm.Assemble(toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	var before, after, entries, ends int
	var loadValue int64
	tool := ToolFunc(func(ix *Instrumenter) {
		f := ix.Prog.ProcByName("f")
		ix.AddProcEntry(*f, func(ev *vm.Event) { entries++ })
		ix.AddBefore(f.Start, func(ev *vm.Event) { before++ })
		ix.ForEachInst(func(in isa.Inst) bool { return in.Op == isa.OpLdq },
			func(pc int, in isa.Inst) {
				ix.AddAfter(pc, func(ev *vm.Event) {
					after++
					loadValue = ev.Value
				})
			})
		ix.AddProgramEnd(func(ev *vm.Event) { ends++ })
	})
	res, err := Run(prog, nil, false, tool)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 5 || before != 5 {
		t.Errorf("entry hooks = %d/%d, want 5", entries, before)
	}
	if after != 5 || loadValue != 33 {
		t.Errorf("after hooks = %d value %d", after, loadValue)
	}
	if ends != 1 {
		t.Errorf("end hooks = %d", ends)
	}
	if res.AnalysisCalls == 0 {
		t.Error("analysis calls not counted")
	}
}

func TestMultipleToolsCompose(t *testing.T) {
	prog, err := asm.Assemble(toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	var a, b int
	t1 := ToolFunc(func(ix *Instrumenter) { ix.AddBefore(0, func(*vm.Event) { a++ }) })
	t2 := ToolFunc(func(ix *Instrumenter) { ix.AddBefore(0, func(*vm.Event) { b++ }) })
	if _, err := Run(prog, nil, false, t1, t2); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 1 {
		t.Errorf("tools fired %d/%d", a, b)
	}
}

func TestChargeHooksAffectsCycles(t *testing.T) {
	prog, err := asm.Assemble(toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	hook := ToolFunc(func(ix *Instrumenter) {
		ix.AddBefore(0, func(*vm.Event) {})
	})
	free, err := Run(prog, nil, false, hook)
	if err != nil {
		t.Fatal(err)
	}
	charged, err := Run(prog, nil, true, hook)
	if err != nil {
		t.Fatal(err)
	}
	if charged.Cycles != free.Cycles+vm.AnalysisCallCycles {
		t.Errorf("charged %d, free %d", charged.Cycles, free.Cycles)
	}
}
