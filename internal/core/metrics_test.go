package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func observeAll(s *SiteStats, vals ...int64) {
	for _, v := range vals {
		s.Observe(v)
	}
}

func TestSiteStatsConstantStream(t *testing.T) {
	s := NewSiteStats(3, "f+0", DefaultTNVConfig(), true)
	for i := 0; i < 100; i++ {
		s.Observe(7)
	}
	if s.Exec != 100 {
		t.Errorf("exec = %d", s.Exec)
	}
	if got := s.LVP(); got != 0.99 { // first execution has no "last"
		t.Errorf("LVP = %v, want 0.99", got)
	}
	if s.InvTop(1) != 1.0 || s.InvAll(1) != 1.0 {
		t.Errorf("invariance of constant stream = %v/%v", s.InvTop(1), s.InvAll(1))
	}
	if s.PctZero() != 0 {
		t.Errorf("pctZero = %v", s.PctZero())
	}
	if s.Classify(DefaultThresholds()) != Invariant {
		t.Errorf("class = %v", s.Classify(DefaultThresholds()))
	}
}

func TestSiteStatsAlternatingStream(t *testing.T) {
	// 0,1,0,1,... LVP = 0 but Inv-Top(1) = 0.5: the paper's core
	// distinction between temporal locality and invariance.
	s := NewSiteStats(0, "x", DefaultTNVConfig(), true)
	for i := 0; i < 1000; i++ {
		s.Observe(int64(i % 2))
	}
	if s.LVP() != 0 {
		t.Errorf("LVP = %v, want 0", s.LVP())
	}
	if s.InvTop(1) != 0.5 {
		t.Errorf("InvTop1 = %v, want 0.5", s.InvTop(1))
	}
	if s.PctZero() != 0.5 {
		t.Errorf("pctZero = %v, want 0.5", s.PctZero())
	}
	if got := s.Diff(); got != 0.5 {
		t.Errorf("Diff = %v, want 0.5", got)
	}
	if s.Classify(DefaultThresholds()) != SemiInvariant {
		t.Errorf("class = %v", s.Classify(DefaultThresholds()))
	}
}

func TestSiteStatsRunsVsInvariance(t *testing.T) {
	// 0,0,0,...,1,1,1,... (two runs): high LVP, Inv-Top(1)=0.5. The
	// converse of the alternating case: locality without invariance.
	s := NewSiteStats(0, "x", DefaultTNVConfig(), true)
	for i := 0; i < 500; i++ {
		s.Observe(0)
	}
	for i := 0; i < 500; i++ {
		s.Observe(1)
	}
	if got := s.LVP(); got != 0.998 {
		t.Errorf("LVP = %v, want 0.998", got)
	}
	if s.InvTop(1) != 0.5 {
		t.Errorf("InvTop1 = %v, want 0.5", s.InvTop(1))
	}
}

func TestVariantStream(t *testing.T) {
	s := NewSiteStats(0, "x", DefaultTNVConfig(), true)
	for i := 0; i < 1000; i++ {
		s.Observe(int64(i))
	}
	if s.LVP() != 0 {
		t.Errorf("LVP = %v", s.LVP())
	}
	if s.InvAll(1) != 0.001 {
		t.Errorf("InvAll1 = %v", s.InvAll(1))
	}
	if s.Classify(DefaultThresholds()) != Variant {
		t.Errorf("class = %v", s.Classify(DefaultThresholds()))
	}
}

func TestClassStrings(t *testing.T) {
	if Invariant.String() != "invariant" || SemiInvariant.String() != "semi-invariant" || Variant.String() != "variant" {
		t.Error("class names wrong")
	}
}

func TestAggregateWeighting(t *testing.T) {
	// Site A: 900 executions of constant 5 (LVP≈1, inv 1).
	// Site B: 100 executions of distinct values (LVP 0, inv 1/100).
	a := NewSiteStats(0, "a", DefaultTNVConfig(), true)
	for i := 0; i < 900; i++ {
		a.Observe(5)
	}
	b := NewSiteStats(1, "b", DefaultTNVConfig(), true)
	for i := 0; i < 100; i++ {
		b.Observe(int64(i * 3))
	}
	m := Aggregate([]*SiteStats{a, b}, 10)
	if m.Sites != 2 || m.Execs != 1000 {
		t.Fatalf("sites=%d execs=%d", m.Sites, m.Execs)
	}
	wantInv1 := 0.9*1.0 + 0.1*0.01
	if math.Abs(m.InvAll1-wantInv1) > 1e-9 {
		t.Errorf("InvAll1 = %v, want %v", m.InvAll1, wantInv1)
	}
	wantLVP := 0.9 * (899.0 / 900.0)
	if math.Abs(m.LVP-wantLVP) > 1e-9 {
		t.Errorf("LVP = %v, want %v", m.LVP, wantLVP)
	}
}

func TestAggregateSkipsEmptySites(t *testing.T) {
	a := NewSiteStats(0, "a", DefaultTNVConfig(), false)
	a.Observe(1)
	empty := NewSiteStats(1, "b", DefaultTNVConfig(), false)
	m := Aggregate([]*SiteStats{a, empty}, 10)
	if m.Sites != 1 {
		t.Errorf("sites = %d, want 1 (empty site excluded)", m.Sites)
	}
}

// Property: all aggregate metrics stay in [0,1] and InvTop1 ≤ InvTopN,
// LVP/zero/diff bounded, over random site populations.
func TestAggregateBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sites []*SiteStats
		for i := 0; i < 1+r.Intn(8); i++ {
			s := NewSiteStats(i, "s", DefaultTNVConfig(), true)
			n := r.Intn(500)
			for j := 0; j < n; j++ {
				s.Observe(int64(r.Intn(1 + r.Intn(40))))
			}
			sites = append(sites, s)
		}
		m := Aggregate(sites, 10)
		in01 := func(x float64) bool { return x >= 0 && x <= 1+1e-9 }
		return in01(m.LVP) && in01(m.InvTop1) && in01(m.InvTopN) &&
			in01(m.InvAll1) && in01(m.InvAllN) && in01(m.PctZero) && in01(m.Diff) &&
			m.InvTop1 <= m.InvTopN+1e-9 && m.InvAll1 <= m.InvAllN+1e-9 &&
			m.InvTop1 <= m.InvAll1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Diff(L/I) equals |LVP − InvTop1| per site.
func TestDiffDefinition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSiteStats(0, "s", DefaultTNVConfig(), false)
		for j := 0; j < 200+r.Intn(200); j++ {
			s.Observe(int64(r.Intn(5)))
		}
		return math.Abs(s.Diff()-math.Abs(s.LVP()-s.InvTop(1))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInvAllFallsBackToTNV(t *testing.T) {
	s := NewSiteStats(0, "s", DefaultTNVConfig(), false) // no full profile
	observeAll(s, 1, 1, 2)
	if s.InvAll(1) != s.InvTop(1) {
		t.Error("InvAll without full profile should fall back to the TNV estimate")
	}
}
