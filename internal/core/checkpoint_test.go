package core

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/atomicio"
	"valueprof/internal/program"
	"valueprof/internal/vm"
)

// ckptSrc is a deterministic ~21k-instruction workload whose profiled
// values vary per iteration (t0 counts down, t4 mixes in input), so
// TNV tables exercise eviction and periodic clearing across a resume.
const ckptSrc = `
        .proc main
main:   syscall getint
        add t5, v0, zero
loop2:  li t0, 100
loop:   li t1, 42
        add t2, t1, t0
        ldq t3, cell
        add t4, t0, t5
        addi t0, t0, -1
        bne t0, loop
        addi t5, t5, -1
        bne t5, loop2
        syscall exit
        .endproc
        .data
cell:   .word 7
`

var ckptInput = []int64{30}

func assembleCkpt(t *testing.T) *program.Program {
	t.Helper()
	prog, err := asm.Assemble(ckptSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runUninterrupted runs the workload to completion and returns the
// profiler.
func runUninterrupted(t *testing.T, prog *program.Program) *ValueProfiler {
	t.Helper()
	vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
	if err != nil {
		t.Fatal(err)
	}
	res, outcome, err := atom.RunControlled(context.Background(), prog,
		atom.RunOptions{Input: ckptInput}, vp)
	if err != nil || outcome != vm.OutcomeCompleted {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	if res.InstCount < 10000 {
		t.Fatalf("workload too short for checkpoint tests: %d insts", res.InstCount)
	}
	return vp
}

// siteStatesOf extracts comparable full per-site state. Like every
// reader of accumulated site state it must drain the batched value
// buffers first.
func siteStatesOf(vp *ValueProfiler) map[int]SiteState {
	vp.FlushBuffers()
	out := make(map[int]SiteState)
	for pc, s := range vp.sites {
		if s.Exec == 0 {
			continue
		}
		out[pc] = siteState(s)
	}
	return out
}

func TestResumeEqualsUninterrupted(t *testing.T) {
	prog := assembleCkpt(t)
	want := siteStatesOf(runUninterrupted(t, prog))

	// Kill the instrumented run at arbitrary instruction counts, both
	// barely past a checkpoint and deep into an interval.
	for _, killAt := range []uint64{1001, 5000, 9999, 17500} {
		path := filepath.Join(t.TempDir(), "run.ckpt")

		vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
		if err != nil {
			t.Fatal(err)
		}
		ckpt := NewCheckpointer(vp, path, 1000, "ckpt", "test")
		killed := errors.New("injected kill")
		kill := atom.ToolFunc(func(ix *atom.Instrumenter) {
			ix.AddStep(func(v *vm.VM) error {
				if v.InstCount >= killAt {
					return killed
				}
				return nil
			})
		})
		_, outcome, err := atom.RunControlled(context.Background(), prog,
			atom.RunOptions{Input: ckptInput}, vp, ckpt, kill)
		if !errors.Is(err, killed) || outcome != vm.OutcomeFaulted {
			t.Fatalf("killAt %d: outcome %v err %v", killAt, outcome, err)
		}
		if ckpt.Written() == 0 {
			t.Fatalf("killAt %d: no checkpoint written", killAt)
		}

		// Resume from the sidecar file with a fresh profiler and VM.
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("killAt %d: %v", killAt, err)
		}
		if ck.InstCount() == 0 || ck.InstCount() >= killAt+1000 {
			t.Fatalf("killAt %d: checkpoint at odd instcount %d", killAt, ck.InstCount())
		}
		vp2, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if err := vp2.Seed(ck); err != nil {
			t.Fatal(err)
		}
		v := atom.Prepare(prog, atom.RunOptions{Input: ckptInput}, vp2)
		if err := ck.RestoreVM(v); err != nil {
			t.Fatal(err)
		}
		outcome2, err := v.RunControlled(context.Background())
		if err != nil || outcome2 != vm.OutcomeCompleted {
			t.Fatalf("killAt %d: resume outcome %v err %v", killAt, outcome2, err)
		}

		got := siteStatesOf(vp2)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("killAt %d: resumed profile differs from uninterrupted run\n got: %+v\nwant: %+v",
				killAt, got, want)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	prog := assembleCkpt(t)
	vp := runUninterrupted(t, prog)
	ck, err := CheckpointOf(vp, nil, "ckpt", "test")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "final.ckpt")
	if err := ck.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Sites, ck.Sites) || back.TNV != ck.TNV {
		t.Error("checkpoint state did not round-trip")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	prog := assembleCkpt(t)
	vp := runUninterrupted(t, prog)
	ck, err := CheckpointOf(vp, nil, "ckpt", "test")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := ck.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at any byte boundary must be detected, not panic.
	for _, cut := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 2} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); err == nil {
			t.Errorf("truncated checkpoint (%d bytes) accepted", cut)
		}
	}

	// A flipped payload byte must fail the CRC.
	flipped := append([]byte(nil), data...)
	i := len(flipped) / 2
	flipped[i] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("bit-flipped checkpoint accepted")
	}
}

func TestCrashMidWriteLeavesOldCheckpointLoadable(t *testing.T) {
	prog := assembleCkpt(t)
	vp := runUninterrupted(t, prog)
	ck, err := CheckpointOf(vp, nil, "ckpt", "test")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := ck.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}

	// Simulate the process dying partway through the next snapshot:
	// the staged write stops mid-payload and never renames.
	boom := errors.New("killed")
	err = atomicio.WriteFile(path, func(w io.Writer) error {
		if err := WriteCheckpoint(io.MultiWriter(w), ck); err != nil {
			return err
		}
		_, _ = w.Write([]byte("...partial next snapshot"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after torn write: %v", err)
	}
	if !reflect.DeepEqual(back.Sites, ck.Sites) {
		t.Error("previous checkpoint content changed")
	}
}

func TestSeedRejectsMismatchedConfig(t *testing.T) {
	prog := assembleCkpt(t)
	vp := runUninterrupted(t, prog)
	ck, err := CheckpointOf(vp, nil, "ckpt", "test")
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewValueProfiler(Options{TNV: TNVConfig{Size: 4, Steady: 2, ClearInterval: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Seed(ck); err == nil {
		t.Error("mismatched TNV config accepted")
	}
}

func TestMergeRecords(t *testing.T) {
	a := &ProfileRecord{Program: "p", Input: "x", K: 3, Sites: []SiteRecord{
		{PC: 1, Name: "s1", Exec: 10, LVPHits: 5, Zeros: 2,
			Top: []TNVEntry{{Value: 7, Count: 6}, {Value: 9, Count: 4}}},
		{PC: 2, Name: "s2", Exec: 4, Top: []TNVEntry{{Value: 1, Count: 4}}},
	}}
	b := &ProfileRecord{Program: "p", Input: "x", K: 3, Sites: []SiteRecord{
		{PC: 1, Name: "s1", Exec: 6, LVPHits: 1, Zeros: 1,
			Top: []TNVEntry{{Value: 9, Count: 5}, {Value: 3, Count: 1}}},
		{PC: 5, Name: "s5", Exec: 2, Top: []TNVEntry{{Value: 8, Count: 2}}},
	}}
	m, err := MergeRecords(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sites) != 3 {
		t.Fatalf("sites: %+v", m.Sites)
	}
	s1 := m.Sites[0]
	if s1.Exec != 16 || s1.LVPHits != 6 || s1.Zeros != 3 {
		t.Errorf("s1 counters: %+v", s1)
	}
	// Value 9 appears in both halves: counts add (4+5=9 > 6).
	if s1.Top[0].Value != 9 || s1.Top[0].Count != 9 {
		t.Errorf("s1 top: %+v", s1.Top)
	}
	for k := 1; k <= 3; k++ {
		if s1.InvTop(k) > 1.0 {
			t.Errorf("merged InvTop(%d) = %v > 1", k, s1.InvTop(k))
		}
	}
	if _, err := MergeRecords(a, &ProfileRecord{Program: "q", K: 3}); err == nil {
		t.Error("different programs merged")
	}
	if _, err := MergeRecords(a, &ProfileRecord{Program: "p", K: 5}); err == nil {
		t.Error("different widths merged")
	}
}
