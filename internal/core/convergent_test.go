package core

import (
	"strings"
	"testing"
)

// TestConvergentConfigValidate walks every error path of the exported
// validator plus the accepting boundaries.
func TestConvergentConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     ConvergentConfig
		wantErr string // substring of the error, "" for accept
	}{
		{"default", DefaultConvergentConfig(), ""},
		{"minimal", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 1, Epsilon: 0.5}, ""},
		{"skip-at-cap", ConvergentConfig{BurstLen: 8, InitialSkip: 64, MaxSkip: 64, Epsilon: 0.02}, ""},
		{"epsilon-near-zero", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 2, Epsilon: 1e-9}, ""},
		{"epsilon-near-one", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 2, Epsilon: 0.999}, ""},

		{"zero-burst", ConvergentConfig{BurstLen: 0, InitialSkip: 1, MaxSkip: 1, Epsilon: 0.1}, "BurstLen"},
		{"zero-initial-skip", ConvergentConfig{BurstLen: 1, InitialSkip: 0, MaxSkip: 1, Epsilon: 0.1}, "InitialSkip"},
		{"cap-below-initial", ConvergentConfig{BurstLen: 1, InitialSkip: 10, MaxSkip: 5, Epsilon: 0.1}, "MaxSkip 5 < InitialSkip 10"},
		{"zero-epsilon", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 1, Epsilon: 0}, "Epsilon"},
		{"negative-epsilon", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 1, Epsilon: -0.1}, "Epsilon"},
		{"epsilon-one", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 1, Epsilon: 1}, "Epsilon"},
		{"epsilon-above-one", ConvergentConfig{BurstLen: 1, InitialSkip: 1, MaxSkip: 1, Epsilon: 1.5}, "Epsilon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want accept", err)
				}
				// An accepted config must also be accepted end to end.
				if _, err := NewValueProfiler(Options{Convergent: &tc.cfg}); err != nil {
					t.Fatalf("NewValueProfiler rejected validated config: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v, want error containing %q", tc.cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
			if _, err := NewValueProfiler(Options{Convergent: &tc.cfg}); err == nil {
				t.Fatal("NewValueProfiler accepted a config Validate rejects")
			}
		})
	}
}

// TestConvStateRearmOnDrift drives the sampler through the full
// phase-change cycle: converge on a constant stream (skip doubling
// geometrically), drift when the value changes (re-arming continuous
// profiling and resetting the backoff), then converge again — at
// which point the skip must restart at InitialSkip, not resume the
// doubled schedule.
func TestConvStateRearmOnDrift(t *testing.T) {
	cfg := ConvergentConfig{BurstLen: 10, InitialSkip: 20, MaxSkip: 80, Epsilon: 0.05}
	cs := newConvState(&cfg)
	site := NewSiteStats(0, "s", DefaultTNVConfig(), false)
	feed := func(v int64, n int) {
		for i := 0; i < n; i++ {
			if cs.shouldProfile(site) {
				site.Observe(v)
			} else {
				site.Skipped++
			}
		}
	}

	// Two constant bursts converge; a skip-20 round converges again,
	// doubling to 40.
	feed(9, 20)
	if cs.profiling || cs.skip != 20 {
		t.Fatalf("after convergence: profiling=%v skip=%d, want skipping 20", cs.profiling, cs.skip)
	}
	feed(9, 30) // 20 skipped + one burst
	if cs.profiling || cs.skip != 40 {
		t.Fatalf("after second convergence: profiling=%v skip=%d, want skip doubled to 40", cs.profiling, cs.skip)
	}

	// Phase change: sit out the 40-skip, then a burst of a new value
	// moves the invariance by far more than epsilon. The checkpoint
	// must re-arm continuous profiling and reset the backoff.
	feed(7, 50) // 40 skipped + one burst of the new value
	if !cs.profiling || cs.skip != 0 {
		t.Fatalf("after drift: profiling=%v skip=%d, want continuous profiling with backoff reset", cs.profiling, cs.skip)
	}

	// Keep feeding the new value until the invariance settles again;
	// the first post-drift convergence must use InitialSkip.
	for i := 0; i < 50 && cs.profiling; i++ {
		feed(7, 10)
	}
	if cs.profiling {
		t.Fatal("sampler never re-converged on the new constant phase")
	}
	if cs.skip != cfg.InitialSkip {
		t.Fatalf("post-drift skip = %d, want InitialSkip %d (backoff must restart)", cs.skip, cfg.InitialSkip)
	}
	if site.Skipped != 60 {
		t.Fatalf("Skipped = %d, want 60 (20 + 40)", site.Skipped)
	}
}
