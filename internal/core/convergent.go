package core

import (
	"fmt"
	"math"
)

// ConvergentConfig parameterizes the paper's intelligent sampler.
//
// Each site is profiled in bursts of BurstLen executions. At the end of
// a burst the sampler checkpoints the site's cumulative Inv-Top(1); if
// it moved by less than Epsilon since the previous checkpoint the site
// has "converged" and the following skip period doubles (up to
// MaxSkip). If the invariance drifted by Epsilon or more, the site is
// re-armed and the skip period resets to InitialSkip. This is the
// thesis's convergence criterion "based upon a change in invariance".
type ConvergentConfig struct {
	BurstLen    uint64  // executions profiled per burst
	InitialSkip uint64  // skip length after the first convergence
	MaxSkip     uint64  // backoff cap
	Epsilon     float64 // invariance delta below which the site converged
}

// DefaultConvergentConfig returns the baseline sampler used in the
// experiments: 1000-execution bursts, skips doubling from 4000 to
// 256000, 2% convergence criterion.
func DefaultConvergentConfig() ConvergentConfig {
	return ConvergentConfig{BurstLen: 1000, InitialSkip: 4000, MaxSkip: 256000, Epsilon: 0.02}
}

// Validate reports whether the configuration is usable: a positive
// burst, a positive initial skip no larger than the cap, and a
// convergence criterion strictly inside (0,1). Profiler Options and
// NewConvergentFactory call this; exported so tools accepting sampler
// parameters from flags or config files can reject them up front.
func (c *ConvergentConfig) Validate() error {
	if c.BurstLen == 0 {
		return fmt.Errorf("core: convergent BurstLen must be positive")
	}
	if c.InitialSkip == 0 {
		return fmt.Errorf("core: convergent InitialSkip must be positive")
	}
	if c.MaxSkip < c.InitialSkip {
		return fmt.Errorf("core: convergent MaxSkip %d < InitialSkip %d", c.MaxSkip, c.InitialSkip)
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("core: convergent Epsilon %v out of (0,1)", c.Epsilon)
	}
	return nil
}

// convState is the per-site sampler state machine.
type convState struct {
	cfg       *ConvergentConfig
	profiling bool
	remaining uint64 // executions left in the current burst or skip
	skip      uint64 // current skip length
	lastInv   float64
	hasCkpt   bool
	// Checkpoints counts convergence checks, for diagnostics.
	checkpoints uint64
}

func newConvState(cfg *ConvergentConfig) *convState {
	return &convState{cfg: cfg, profiling: true, remaining: cfg.BurstLen}
}

// shouldProfile advances the state machine by one execution of the
// site and reports whether this execution is profiled. site supplies
// the cumulative invariance at burst boundaries.
func (c *convState) shouldProfile(site *SiteStats) bool {
	if c.profiling {
		c.remaining--
		if c.remaining == 0 {
			c.checkpoint(site)
		}
		return true
	}
	c.remaining--
	if c.remaining == 0 {
		c.profiling = true
		c.remaining = c.cfg.BurstLen
	}
	return false
}

func (c *convState) checkpoint(site *SiteStats) {
	c.checkpoints++
	inv := site.InvTop(1)
	converged := c.hasCkpt && math.Abs(inv-c.lastInv) < c.cfg.Epsilon
	c.lastInv = inv
	c.hasCkpt = true
	if !converged {
		// Not converged (or first checkpoint): profile continuously
		// until the invariance settles, and reset the backoff so a
		// phase change is watched closely again.
		c.skip = 0
		c.profiling = true
		c.remaining = c.cfg.BurstLen
		return
	}
	if c.skip == 0 {
		c.skip = c.cfg.InitialSkip
	} else {
		c.skip *= 2
		if c.skip > c.cfg.MaxSkip {
			c.skip = c.cfg.MaxSkip
		}
	}
	c.profiling = false
	c.remaining = c.skip
}
