package core

import (
	"bytes"
	"strings"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
)

func profileOf(t *testing.T, src string) *Profile {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	return vp.Profile()
}

func TestRecordRoundTrip(t *testing.T) {
	pr := profileOf(t, loopSrc)
	rec := pr.Record("loop", "test")
	if rec.Program != "loop" || rec.Input != "test" || rec.K != 10 {
		t.Fatalf("header: %+v", rec)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sites) != len(rec.Sites) {
		t.Fatalf("sites %d != %d", len(back.Sites), len(rec.Sites))
	}
	// Metrics recomputed from the record match the live profile.
	for _, sr := range back.Sites {
		live := pr.Site(sr.PC)
		if live == nil {
			t.Fatalf("site %d missing live", sr.PC)
		}
		if sr.LVP() != live.LVP() {
			t.Errorf("site %d LVP %v != %v", sr.PC, sr.LVP(), live.LVP())
		}
		if sr.InvTop(1) != live.InvTop(1) {
			t.Errorf("site %d InvTop %v != %v", sr.PC, sr.InvTop(1), live.InvTop(1))
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadProfileRecord(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadProfileRecord(strings.NewReader(`{"k":0}`)); err == nil {
		t.Error("zero table width accepted")
	}
}

func TestCompareIdenticalRuns(t *testing.T) {
	a := profileOf(t, loopSrc).Record("loop", "a")
	b := profileOf(t, loopSrc).Record("loop", "b")
	c := Compare(a, b, DefaultThresholds())
	if c.CommonSites != len(a.Sites) || c.OnlyA != 0 || c.OnlyB != 0 {
		t.Fatalf("join: %+v", c)
	}
	if c.ClassAgreement != 1.0 || c.TopValueAgreement != 1.0 || c.MeanAbsInvDiff != 0 {
		t.Errorf("identical runs differ: %+v", c)
	}
}

func TestCompareDifferentPrograms(t *testing.T) {
	a := profileOf(t, loopSrc).Record("loop", "a")
	b := profileOf(t, phaseSrc).Record("phase", "b")
	c := Compare(a, b, DefaultThresholds())
	if c.OnlyA == 0 && c.OnlyB == 0 && c.CommonSites == 0 {
		t.Errorf("comparison degenerate: %+v", c)
	}
}

func TestCompareDetectsChangedValues(t *testing.T) {
	// Same structure, different constant: top-value agreement drops.
	a := profileOf(t, loopSrc).Record("loop", "a")
	changed := strings.Replace(loopSrc, "li t1, 42", "li t1, 43", 1)
	b := profileOf(t, changed).Record("loop", "b")
	c := Compare(a, b, DefaultThresholds())
	if c.TopValueAgreement >= 1.0 {
		t.Errorf("changed constant not detected: %+v", c)
	}
	if c.ClassAgreement != 1.0 {
		t.Errorf("classification should be unchanged: %+v", c)
	}
}

func TestRecordProvenanceRoundTrip(t *testing.T) {
	rec := profileOf(t, loopSrc).Record("loop", "test")
	rec.Outcome = "faulted"
	rec.Salvaged = true
	rec.Attempts = 3
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Salvaged || back.Attempts != 3 || back.Outcome != "faulted" {
		t.Fatalf("provenance lost: %+v", back)
	}
	if got := back.provenance(); len(got) != 1 || got[0] != "loop/test:faulted:salvaged" {
		t.Fatalf("provenance label: %v", got)
	}
}

func TestRecordRejectsNegativeAttempts(t *testing.T) {
	rec := profileOf(t, loopSrc).Record("loop", "test")
	rec.Attempts = -2
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadProfileRecord(bytes.NewReader(data)); err == nil {
		t.Error("strict loader accepted negative attempt count")
	}
	back, rep, err := ReadProfileRecordPolicy(bytes.NewReader(data), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if back.Attempts != 0 {
		t.Errorf("repair clamped to %d, want 0", back.Attempts)
	}
	if len(rep.Problems) == 0 {
		t.Error("repair report silent about the clamp")
	}
}

func TestMergePropagatesProvenance(t *testing.T) {
	a := profileOf(t, loopSrc).Record("loop", "a")
	a.Salvaged = true
	a.Attempts = 2
	b := profileOf(t, loopSrc).Record("loop", "b")
	b.Attempts = 1
	m, err := MergeRecords(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Salvaged {
		t.Error("merge of a salvaged record not marked salvaged")
	}
	if m.Attempts != 3 {
		t.Errorf("attempts %d, want 3", m.Attempts)
	}
	if len(m.Merged) != 2 || m.Merged[0] != "loop/a:salvaged" {
		t.Errorf("merged provenance: %v", m.Merged)
	}
}
