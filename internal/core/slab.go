package core

// siteSlab block-allocates one profiling run's site state. Sites
// escape into the returned Profile, so they cannot be pooled across
// jobs the way VMs and buffers are; instead each run carves its
// SiteStats, TNVTable, and entry storage out of chunked slabs,
// collapsing three heap allocations per site into three per chunk.
// The slab is abandoned on ValueProfiler.ResetFor — its storage
// belongs to the profile that escaped with it — and the next run
// starts a fresh one.
type siteSlab struct {
	stats   []SiteStats
	tables  []TNVTable
	entries []TNVEntry
}

// siteSlabChunk is the number of sites allocated per slab refill.
const siteSlabChunk = 64

// newSite allocates one site from the slab. Each TNV table receives an
// entry slice with capacity exactly TNV.Size carved from the shared
// entry slab; the table never appends past its capacity (inserts stop
// at Size), and any exceptional growth (e.g. a merge) safely
// reallocates out of the slab. Ground-truth sites (TrackFull) keep the
// plain allocation path: they carry maps and are measurement-only.
func (p *ValueProfiler) newSite(pc int, name string) *SiteStats {
	if p.opts.TrackFull {
		return NewSiteStats(pc, name, p.opts.TNV, true)
	}
	sl := &p.slab
	k := p.opts.TNV.Size
	if len(sl.stats) == 0 {
		sl.stats = make([]SiteStats, siteSlabChunk)
		sl.tables = make([]TNVTable, siteSlabChunk)
		sl.entries = make([]TNVEntry, siteSlabChunk*k)
	}
	s, t := &sl.stats[0], &sl.tables[0]
	sl.stats, sl.tables = sl.stats[1:], sl.tables[1:]
	*t = TNVTable{cfg: p.opts.TNV, entries: sl.entries[:0:k]}
	sl.entries = sl.entries[k:]
	*s = SiteStats{PC: pc, Name: name, TNV: t}
	return s
}
