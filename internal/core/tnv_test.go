package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTNVBasicCounting(t *testing.T) {
	tab := NewTNV(TNVConfig{Size: 4, Steady: 2, ClearInterval: 0})
	for _, v := range []int64{5, 5, 7, 5, 9, 7} {
		tab.Add(v)
	}
	if tab.Updates() != 6 {
		t.Errorf("updates = %d, want 6", tab.Updates())
	}
	top := tab.Top(3)
	if len(top) != 3 || top[0] != (TNVEntry{5, 3}) || top[1] != (TNVEntry{7, 2}) || top[2] != (TNVEntry{9, 1}) {
		t.Errorf("top = %+v", top)
	}
	v, c, ok := tab.TopValue()
	if !ok || v != 5 || c != 3 {
		t.Errorf("TopValue = %d,%d,%v", v, c, ok)
	}
	if got := tab.InvTop(1); got != 0.5 {
		t.Errorf("InvTop(1) = %v, want 0.5", got)
	}
	if got := tab.InvTop(4); got != 1.0 {
		t.Errorf("InvTop(4) = %v, want 1", got)
	}
}

func TestTNVLFUReplacement(t *testing.T) {
	// Size 3, steady 1, no clearing: with the table full, a miss
	// replaces the lowest-count entry.
	tab := NewTNV(TNVConfig{Size: 3, Steady: 1, ClearInterval: 0})
	tab.Add(1)
	tab.Add(1)
	tab.Add(2)
	tab.Add(3) // full: [1:2, 2:1, 3:1]
	tab.Add(4) // evicts the last entry (3)
	top := tab.Top(3)
	if top[0].Value != 1 {
		t.Fatalf("steady top lost: %+v", top)
	}
	vals := map[int64]bool{}
	for _, e := range top {
		vals[e.Value] = true
	}
	if vals[3] || !vals[4] {
		t.Errorf("LFU victim wrong: %+v", top)
	}
}

func TestTNVSteadyNeverEvicted(t *testing.T) {
	// Steady == Size: once full, misses are dropped.
	tab := NewTNV(TNVConfig{Size: 2, Steady: 2, ClearInterval: 0})
	tab.Add(1)
	tab.Add(2)
	tab.Add(3)
	tab.Add(3)
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	for _, e := range tab.Top(2) {
		if e.Value == 3 {
			t.Errorf("fully-steady table admitted a new value: %+v", tab.Top(2))
		}
	}
}

func TestTNVPeriodicClear(t *testing.T) {
	tab := NewTNV(TNVConfig{Size: 4, Steady: 2, ClearInterval: 8})
	for i := 0; i < 7; i++ {
		tab.Add(int64(i % 4)) // 0,1,2,3,0,1,2 -> counts 0:2 1:2 2:2 3:1
	}
	if tab.Clears() != 0 {
		t.Fatalf("cleared too early")
	}
	tab.Add(9) // 8th update: miss evicts 3, then the clear fires
	if tab.Clears() != 1 {
		t.Fatalf("clears = %d, want 1", tab.Clears())
	}
	if tab.Len() != 2 {
		t.Errorf("len after clear = %d, want steady size 2", tab.Len())
	}
	// A fresh hot value can now climb in.
	for i := 0; i < 3; i++ {
		tab.Add(42)
	}
	found := false
	for _, e := range tab.Top(4) {
		if e.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("new value blocked after clear: %+v", tab.Top(4))
	}
}

func TestTNVClearDisabled(t *testing.T) {
	tab := NewTNV(TNVConfig{Size: 2, Steady: 1, ClearInterval: 0})
	for i := 0; i < 10000; i++ {
		tab.Add(int64(i))
	}
	if tab.Clears() != 0 {
		t.Errorf("clears = %d with clearing disabled", tab.Clears())
	}
}

func TestTNVPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []TNVConfig{{Size: 0}, {Size: 4, Steady: 5}, {Size: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTNV(%+v) did not panic", cfg)
				}
			}()
			NewTNV(cfg)
		}()
	}
}

// Property: with a table at least as large as the number of distinct
// values and clearing disabled, the TNV table is exact — it matches the
// full profile on every metric.
func TestTNVExactWhenLarge(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%200) + 1
		tab := NewTNV(TNVConfig{Size: 16, Steady: 8, ClearInterval: 0})
		full := NewFullProfile()
		for i := 0; i < n; i++ {
			v := int64(r.Intn(16)) // ≤16 distinct
			tab.Add(v)
			full.Add(v)
		}
		if tab.Updates() != full.Total() {
			return false
		}
		for k := 1; k <= 16; k++ {
			if diff := tab.InvTop(k) - full.InvAll(k); diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TNV invariance estimates are within [0,1], monotone in k,
// and never exceed the ground truth (counts can only be lost, never
// invented).
func TestTNVBoundsAndUnderestimate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := TNVConfig{
			Size:          1 + r.Intn(12),
			ClearInterval: uint64(r.Intn(500)),
		}
		cfg.Steady = r.Intn(cfg.Size + 1)
		tab := NewTNV(cfg)
		full := NewFullProfile()
		n := 100 + r.Intn(3000)
		for i := 0; i < n; i++ {
			// Skewed stream: value 7 about half the time.
			var v int64
			if r.Intn(2) == 0 {
				v = 7
			} else {
				v = int64(r.Intn(50))
			}
			tab.Add(v)
			full.Add(v)
		}
		prev := 0.0
		for k := 1; k <= cfg.Size; k++ {
			inv := tab.InvTop(k)
			if inv < 0 || inv > 1 || inv+1e-12 < prev {
				return false
			}
			prev = inv
		}
		// Estimated top-1 coverage cannot exceed the exact count of the
		// estimated top value (eviction loses counts, never adds).
		if top, c, ok := tab.TopValue(); ok {
			if c > full.Count(top) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a value occurring in the majority of a random stream always
// ends as the table's top value (the paper's requirement that the TNV
// table find the dominant value of a semi-invariant site).
func TestTNVFindsDominantValue(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTNV(DefaultTNVConfig())
		n := 500 + r.Intn(5000)
		for i := 0; i < n; i++ {
			if r.Intn(100) < 70 {
				tab.Add(1234)
			} else {
				tab.Add(int64(r.Intn(1000000)))
			}
		}
		top, _, ok := tab.TopValue()
		return ok && top == 1234
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFullProfile(t *testing.T) {
	f := NewFullProfile()
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		f.Add(v)
	}
	if f.Total() != 6 || f.Distinct() != 3 {
		t.Errorf("total=%d distinct=%d", f.Total(), f.Distinct())
	}
	top := f.Top(2)
	if top[0] != (TNVEntry{3, 3}) || top[1] != (TNVEntry{2, 2}) {
		t.Errorf("top = %+v", top)
	}
	if f.InvAll(1) != 0.5 || f.InvAll(3) != 1.0 {
		t.Errorf("InvAll = %v, %v", f.InvAll(1), f.InvAll(3))
	}
	if f.Count(3) != 3 || f.Count(99) != 0 {
		t.Errorf("Count wrong")
	}
}

func TestFullProfileTopTieBreak(t *testing.T) {
	f := NewFullProfile()
	f.Add(9)
	f.Add(4)
	top := f.Top(2)
	if top[0].Value != 4 || top[1].Value != 9 {
		t.Errorf("tie-break not by value: %+v", top)
	}
}

func TestEmptyTables(t *testing.T) {
	tab := NewTNV(DefaultTNVConfig())
	if tab.InvTop(1) != 0 {
		t.Error("empty TNV InvTop != 0")
	}
	if _, _, ok := tab.TopValue(); ok {
		t.Error("empty TNV has a top value")
	}
	f := NewFullProfile()
	if f.InvAll(1) != 0 {
		t.Error("empty full InvAll != 0")
	}
}

func TestTNVString(t *testing.T) {
	tab := NewTNV(DefaultTNVConfig())
	tab.Add(5)
	tab.Add(5)
	if got := tab.String(); got != "5:2 (updates=2)" {
		t.Errorf("String = %q", got)
	}
}
