package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/workloads"
)

// randShard builds one shard profile from random observation streams.
// Values stay in a small domain so wide tables never evict (exactness
// is then decided by the merge, not the table).
func randShard(r *rand.Rand, cfg core.TNVConfig, trackFull bool) *core.Profile {
	var sites []*core.SiteStats
	for pc := 0; pc < 12; pc++ {
		if r.Intn(4) == 0 {
			continue // shards do not all see the same sites
		}
		s := core.NewSiteStats(pc, fmt.Sprintf("f+%d", pc), cfg, trackFull)
		for i, n := 0, r.Intn(200); i < n; i++ {
			s.Observe(int64(r.Intn(8)))
		}
		sites = append(sites, s)
	}
	return &core.Profile{Sites: sites, K: cfg.Size, Skipped: uint64(r.Intn(50))}
}

// mustMerge merges or fails the test.
func mustMerge(t *testing.T, a, b *core.Profile) *core.Profile {
	t.Helper()
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// profilesEqual compares the externally observable per-site state two
// merge orders must agree on (counters, TNV content, ground truth).
func profilesEqual(t *testing.T, label string, a, b *core.Profile) {
	t.Helper()
	if a.K != b.K || a.Skipped != b.Skipped || a.Pruned != b.Pruned || len(a.Sites) != len(b.Sites) {
		t.Fatalf("%s: profile headers differ: %v vs %v", label, a, b)
	}
	for i, sa := range a.Sites {
		sb := b.Sites[i]
		if sa.PC != sb.PC || sa.Name != sb.Name || sa.Exec != sb.Exec ||
			sa.LVPHits != sb.LVPHits || sa.Zeros != sb.Zeros || sa.Skipped != sb.Skipped {
			t.Fatalf("%s: site %d counters differ: %+v vs %+v", label, sa.PC, sa, sb)
		}
		if !reflect.DeepEqual(sa.TNV.Top(a.K), sb.TNV.Top(b.K)) {
			t.Fatalf("%s: site %d TNV differs: %v vs %v", label, sa.PC, sa.TNV.Top(a.K), sb.TNV.Top(b.K))
		}
		if (sa.Full == nil) != (sb.Full == nil) {
			t.Fatalf("%s: site %d ground truth presence differs", label, sa.PC)
		}
		if sa.Full != nil {
			if sa.Full.Total() != sb.Full.Total() ||
				!reflect.DeepEqual(sa.Full.Top(sa.Full.Distinct()), sb.Full.Top(sb.Full.Distinct())) {
				t.Fatalf("%s: site %d full profiles differ", label, sa.PC)
			}
		}
	}
}

// With ground truth on and tables wide enough that nothing is evicted
// or cleared, merging is exact — so it must be commutative and
// associative in every observable counter.
func TestMergeCommutativeAssociative(t *testing.T) {
	cfg := core.TNVConfig{Size: 10, Steady: 5} // domain has 8 values: no eviction
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*271 + 17))
		a := randShard(r, cfg, true)
		b := randShard(r, cfg, true)
		c := randShard(r, cfg, true)

		profilesEqual(t, fmt.Sprintf("trial %d commutativity", trial),
			mustMerge(t, a, b), mustMerge(t, b, a))
		profilesEqual(t, fmt.Sprintf("trial %d associativity", trial),
			mustMerge(t, mustMerge(t, a, b), c),
			mustMerge(t, a, mustMerge(t, b, c)))

		// Merge allocates a fresh profile; the shards must be reusable.
		profilesEqual(t, fmt.Sprintf("trial %d input purity", trial), a, a.Clone())
	}
}

// The TNV estimate must remain an underestimate of the exact profile
// after merging: merged Inv-Top(k) ≤ merged Inv-All(k) per site.
func TestMergedInvTopBelowInvAll(t *testing.T) {
	cfg := core.TNVConfig{Size: 4, Steady: 2, ClearInterval: 50} // tight: evicts and clears
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*977 + 3))
		m := mustMerge(t, randShard(r, cfg, true), randShard(r, cfg, true))
		for _, s := range m.Sites {
			if s.Exec == 0 || s.Full == nil {
				continue
			}
			for _, k := range []int{1, cfg.Size} {
				if it, ia := s.InvTop(k), s.InvAll(k); it > ia+1e-12 {
					t.Errorf("trial %d site %s: merged InvTop(%d)=%v exceeds InvAll(%d)=%v",
						trial, s.Name, k, it, k, ia)
				}
			}
		}
	}
}

// The acceptance property of the parallel engine: profiling each input
// in its own shard and merging must equal the one concatenated run on
// every exact counter (executions, zeros, ground truth), with LVP off
// by at most the unknowable splice-boundary hit and TNV counts never
// exceeding the true counts.
func TestShardedMergeEqualsConcatenatedRun(t *testing.T) {
	ws := workloads.All()
	if len(ws) < 3 {
		t.Fatalf("suite too small: %d workloads", len(ws))
	}
	opts := core.Options{TNV: core.DefaultTNVConfig(), TrackFull: true}
	for _, w := range ws[:3] {
		prog, err := w.Compile()
		if err != nil {
			t.Fatal(err)
		}

		shard := func(in workloads.Input) *core.Profile {
			vp, err := core.NewValueProfiler(opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := atom.Run(prog, in.Args, false, vp); err != nil {
				t.Fatalf("%s/%s: %v", w.Name, in.Name, err)
			}
			return vp.Profile()
		}
		merged := mustMerge(t, shard(w.Test), shard(w.Train))

		// One profiler over both inputs back to back accumulates the
		// concatenated run.
		vp, err := core.NewValueProfiler(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range w.Inputs() {
			if _, err := atom.Run(prog, in.Args, false, vp); err != nil {
				t.Fatalf("%s/%s: %v", w.Name, in.Name, err)
			}
		}
		concat := vp.Profile()

		if len(merged.Sites) != len(concat.Sites) {
			t.Fatalf("%s: merged %d sites, concatenated %d", w.Name, len(merged.Sites), len(concat.Sites))
		}
		for _, ms := range merged.Sites {
			cs := concat.Site(ms.PC)
			if cs == nil {
				t.Fatalf("%s: site %d missing from concatenated run", w.Name, ms.PC)
			}
			if ms.Exec != cs.Exec || ms.Zeros != cs.Zeros {
				t.Errorf("%s site %s: merged exec/zeros %d/%d, concatenated %d/%d",
					w.Name, ms.Name, ms.Exec, ms.Zeros, cs.Exec, cs.Zeros)
			}
			if ms.Full.Total() != cs.Full.Total() ||
				!reflect.DeepEqual(ms.Full.Top(ms.Full.Distinct()), cs.Full.Top(cs.Full.Distinct())) {
				t.Errorf("%s site %s: merged ground truth differs from concatenated run", w.Name, ms.Name)
			}
			if ms.LVPHits > cs.LVPHits || cs.LVPHits-ms.LVPHits > 1 {
				t.Errorf("%s site %s: merged LVP hits %d vs concatenated %d (allowed gap ≤ 1)",
					w.Name, ms.Name, ms.LVPHits, cs.LVPHits)
			}
			for _, e := range ms.TNV.Top(merged.K) {
				if truth := cs.Full.Count(e.Value); e.Count > truth {
					t.Errorf("%s site %s: merged TNV count %d for value %d exceeds true count %d",
						w.Name, ms.Name, e.Count, e.Value, truth)
				}
			}
		}
	}
}
