package core

import (
	"math"
	"testing"
)

// rec builds a minimal two-input comparison fixture.
func compareRec(input string, sites ...SiteRecord) *ProfileRecord {
	return &ProfileRecord{Program: "p", Input: input, K: 10, Sites: sites}
}

func site(pc int, exec, topCount uint64, topVal int64) SiteRecord {
	s := SiteRecord{PC: pc, Name: "s", Exec: exec}
	if topCount > 0 {
		s.Top = []TNVEntry{{Value: topVal, Count: topCount}}
	}
	return s
}

// TestCompareEdgeCases pins down Compare's behavior on the degenerate
// shapes a salvaged or partial profile can produce: empty records,
// zero-exec sites, disjoint PC sets, and missing TNV tables. None may
// yield NaN, Inf, or out-of-range fractions.
func TestCompareEdgeCases(t *testing.T) {
	th := DefaultThresholds()
	tests := []struct {
		name string
		a, b *ProfileRecord
		want Comparison
	}{
		{
			name: "both empty",
			a:    compareRec("a"),
			b:    compareRec("b"),
			want: Comparison{},
		},
		{
			name: "empty vs populated",
			a:    compareRec("a"),
			b:    compareRec("b", site(1, 10, 9, 7), site(2, 5, 5, 0)),
			want: Comparison{OnlyB: 2},
		},
		{
			name: "populated vs empty",
			a:    compareRec("a", site(1, 10, 9, 7)),
			b:    compareRec("b"),
			want: Comparison{OnlyA: 1},
		},
		{
			name: "disjoint pc sets",
			a:    compareRec("a", site(1, 10, 9, 7), site(3, 4, 2, 5)),
			b:    compareRec("b", site(2, 10, 9, 7), site(4, 4, 2, 5)),
			want: Comparison{OnlyA: 2, OnlyB: 2},
		},
		{
			name: "identical single site",
			a:    compareRec("a", site(1, 10, 10, 7)),
			b:    compareRec("b", site(1, 10, 10, 7)),
			// One common site: correlation degenerates to 0 (no
			// variance), everything else agrees exactly.
			want: Comparison{CommonSites: 1, ClassAgreement: 1, TopValueAgreement: 1},
		},
		{
			name: "zero-exec site never divides by zero",
			a:    compareRec("a", SiteRecord{PC: 1, Exec: 0}),
			b:    compareRec("b", SiteRecord{PC: 1, Exec: 0}),
			want: Comparison{CommonSites: 1, ClassAgreement: 1},
		},
		{
			name: "empty top tables",
			a:    compareRec("a", site(1, 10, 0, 0)),
			b:    compareRec("b", site(1, 10, 0, 0)),
			// No top value on either side: TopValueAgreement counts it
			// as disagreement rather than crashing.
			want: Comparison{CommonSites: 1, ClassAgreement: 1},
		},
		{
			name: "mixed overlap",
			a: compareRec("a",
				site(1, 100, 100, 7), // invariant, same top value
				site(2, 100, 50, 3),  // variant vs invariant below
				site(5, 10, 1, 1)),   // only in a
			b: compareRec("b",
				site(1, 100, 99, 7),
				site(2, 100, 98, 4), // different class AND top value
				site(9, 10, 1, 1)),  // only in b
			want: Comparison{
				CommonSites: 2, OnlyA: 1, OnlyB: 1,
				ClassAgreement: 0.5, TopValueAgreement: 0.5,
				// Two points whose deltas share a sign: Pearson's r
				// is exactly 1.
				InvCorrelation: 1,
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Compare(tc.a, tc.b, th)
			for name, v := range map[string]float64{
				"InvCorrelation":    got.InvCorrelation,
				"ClassAgreement":    got.ClassAgreement,
				"TopValueAgreement": got.TopValueAgreement,
				"MeanAbsInvDiff":    got.MeanAbsInvDiff,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s is %v", name, v)
				}
			}
			if got.CommonSites != tc.want.CommonSites ||
				got.OnlyA != tc.want.OnlyA || got.OnlyB != tc.want.OnlyB {
				t.Errorf("site split = %d/%d/%d, want %d/%d/%d",
					got.CommonSites, got.OnlyA, got.OnlyB,
					tc.want.CommonSites, tc.want.OnlyA, tc.want.OnlyB)
			}
			if got.ClassAgreement != tc.want.ClassAgreement {
				t.Errorf("ClassAgreement = %v, want %v", got.ClassAgreement, tc.want.ClassAgreement)
			}
			if got.TopValueAgreement != tc.want.TopValueAgreement {
				t.Errorf("TopValueAgreement = %v, want %v", got.TopValueAgreement, tc.want.TopValueAgreement)
			}
			if math.Abs(got.InvCorrelation-tc.want.InvCorrelation) > 1e-12 {
				t.Errorf("InvCorrelation = %v, want %v", got.InvCorrelation, tc.want.InvCorrelation)
			}
		})
	}
}

// TestCompareSelfIsPerfect sanity-checks the non-degenerate path: a
// record with spread-out invariances compared against itself must
// report full agreement and correlation 1.
func TestCompareSelfIsPerfect(t *testing.T) {
	r := compareRec("a",
		site(1, 100, 100, 7),
		site(2, 100, 60, 3),
		site(3, 100, 20, 9),
	)
	c := Compare(r, r, DefaultThresholds())
	if c.CommonSites != 3 || c.OnlyA != 0 || c.OnlyB != 0 {
		t.Fatalf("split %d/%d/%d", c.CommonSites, c.OnlyA, c.OnlyB)
	}
	if c.ClassAgreement != 1 || c.TopValueAgreement != 1 || c.MeanAbsInvDiff != 0 {
		t.Errorf("self-compare not perfect: %+v", c)
	}
	if math.Abs(c.InvCorrelation-1) > 1e-12 {
		t.Errorf("InvCorrelation = %v, want 1", c.InvCorrelation)
	}
}
