package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/minic"
)

// Whole-pipeline property test: generate random (but terminating) MiniC
// programs, profile them with ground truth enabled, and check the
// metric invariants the paper's analysis relies on, per site:
//
//	Inv-Top(1) ≤ Inv-Top(N) ≤ 1
//	Inv-Top(k) ≤ Inv-All(k)        (TNV estimates never exceed truth)
//	Inv-All(1) ≥ 1/distinct-values (pigeonhole)
//	LVP, %zero ∈ [0,1]
//	profiled executions = full-profile total
func TestPipelineMetricInvariants(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*31337 + 5))
		src := randomProgram(r)
		prog, err := minic.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nsource:\n%s", trial, err, src)
		}
		vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig(), TrackFull: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := atom.Run(prog, nil, false, vp); err != nil {
			t.Fatalf("trial %d: run: %v\nsource:\n%s", trial, err, src)
		}
		pr := vp.Profile()
		if pr.Profiled() == 0 {
			t.Fatalf("trial %d: empty profile", trial)
		}
		for _, s := range pr.Sites {
			if s.Exec == 0 {
				continue
			}
			i1, iN := s.InvTop(1), s.InvTop(pr.K)
			a1, aN := s.InvAll(1), s.InvAll(pr.K)
			if i1 < 0 || i1 > iN+1e-12 || iN > 1+1e-12 {
				t.Errorf("trial %d site %s: InvTop ordering broken (%v, %v)", trial, s.Name, i1, iN)
			}
			if i1 > a1+1e-12 || iN > aN+1e-12 {
				t.Errorf("trial %d site %s: estimate exceeds truth (%v>%v or %v>%v)",
					trial, s.Name, i1, a1, iN, aN)
			}
			if d := s.Full.Distinct(); d > 0 && a1*float64(d) < 1-1e-9 {
				t.Errorf("trial %d site %s: InvAll(1)=%v below pigeonhole bound for %d values",
					trial, s.Name, a1, d)
			}
			if s.Full.Total() != s.Exec {
				t.Errorf("trial %d site %s: full total %d != exec %d",
					trial, s.Name, s.Full.Total(), s.Exec)
			}
			if lvp := s.LVP(); lvp < 0 || lvp > 1 {
				t.Errorf("trial %d site %s: LVP %v", trial, s.Name, lvp)
			}
			if z := s.PctZero(); z < 0 || z > 1 {
				t.Errorf("trial %d site %s: zero %v", trial, s.Name, z)
			}
		}
	}
}

// randomProgram emits a terminating MiniC program: a few global arrays,
// helper functions with loops of fixed trip counts, and a main that
// calls them with a mix of constant and varying arguments.
func randomProgram(r *rand.Rand) string {
	var b strings.Builder
	n := 16 + r.Intn(48)
	fmt.Fprintf(&b, "int g1[%d];\nint g2[%d];\nint total;\n", n, n)

	nFuncs := 1 + r.Intn(3)
	for f := 0; f < nFuncs; f++ {
		fmt.Fprintf(&b, "func f%d(a, b) {\n  var i; var s = %d;\n", f, r.Intn(10))
		trip := 1 + r.Intn(12)
		fmt.Fprintf(&b, "  for (i = 0; i < %d; i = i + 1) {\n", trip)
		for s := 0; s < 1+r.Intn(3); s++ {
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "    g1[(a + i) %% %d] = s + b;\n", n)
			case 1:
				fmt.Fprintf(&b, "    s = s + g2[(b + i) %% %d] * %d;\n", n, 1+r.Intn(5))
			case 2:
				fmt.Fprintf(&b, "    if (s %% %d == 0) { s = s + a; } else { s = s - 1; }\n", 2+r.Intn(4))
			case 3:
				fmt.Fprintf(&b, "    g2[i %% %d] = (s ^ %d) & 0xFFFF;\n", n, r.Intn(1000))
			default:
				fmt.Fprintf(&b, "    s = (s * %d + %d) %% 65521;\n", 2+r.Intn(7), r.Intn(100))
			}
		}
		fmt.Fprintf(&b, "  }\n  return s;\n}\n")
	}

	fmt.Fprintf(&b, "func main() {\n  var k;\n")
	outer := 20 + r.Intn(60)
	fmt.Fprintf(&b, "  for (k = 0; k < %d; k = k + 1) {\n", outer)
	for c := 0; c < 1+r.Intn(3); c++ {
		f := r.Intn(nFuncs)
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "    total = total + f%d(%d, k);\n", f, r.Intn(50))
		} else {
			fmt.Fprintf(&b, "    total = total + f%d(k %% %d, %d);\n", f, 1+r.Intn(16), r.Intn(50))
		}
	}
	fmt.Fprintf(&b, "  }\n  putint(total & 0xFFFFFF);\n}\n")
	return b.String()
}

// TestPipelineConvergentNeverExceedsFullExec checks, on random
// programs, that sampling only ever reduces the per-site observation
// count and that duty cycle accounting is consistent.
func TestPipelineConvergentAccounting(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		r := rand.New(rand.NewSource(int64(trial)*7 + 99))
		src := randomProgram(r)
		prog, err := minic.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		full, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := atom.Run(prog, nil, false, full); err != nil {
			t.Fatal(err)
		}
		cfg := core.ConvergentConfig{BurstLen: 100, InitialSkip: 400, MaxSkip: 6400, Epsilon: 0.02}
		conv, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig(), Convergent: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := atom.Run(prog, nil, false, conv); err != nil {
			t.Fatal(err)
		}
		fp, cp := full.Profile(), conv.Profile()
		if cp.Profiled()+cp.Skipped != fp.Profiled() {
			t.Errorf("trial %d: profiled %d + skipped %d != full %d",
				trial, cp.Profiled(), cp.Skipped, fp.Profiled())
		}
		for _, s := range cp.Sites {
			truth := fp.Site(s.PC)
			if truth == nil {
				t.Fatalf("trial %d: site %d missing from full profile", trial, s.PC)
			}
			if s.Exec > truth.Exec {
				t.Errorf("trial %d site %d: sampled %d > full %d", trial, s.PC, s.Exec, truth.Exec)
			}
		}
		d := cp.DutyCycle()
		if d < 0 || d > 1 {
			t.Errorf("trial %d: duty %v", trial, d)
		}
	}
}
