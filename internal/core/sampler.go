package core

// Sampler decides, per execution of a profiled site, whether the
// expensive analysis path runs. The convergent sampler (convergent.go)
// is the paper's contribution; PeriodicSampler, RandomSampler and
// BurstSampler are the baselines the thesis's related-work discussion
// raises when asking whether CPI-style random sampling "is sufficient
// for value profiling" (its stated open question).
type Sampler interface {
	// ShouldProfile advances the sampler by one execution of the site
	// and reports whether this execution is profiled. The site's
	// cumulative statistics are available for adaptive policies.
	ShouldProfile(site *SiteStats) bool
}

// SamplerFactory creates one independent Sampler per profiled site.
type SamplerFactory func() Sampler

// BatchSampler is a Sampler whose decisions can be replayed over a
// batch of consecutive executions: instead of one ShouldProfile call
// per execution, the profiler asks for the length of the next
// homogeneous take-or-skip run. Deterministic phase-structured
// samplers (convergent, burst, periodic) implement it, which lets
// their sites use the VM's batched ValueBuffer path with the exact
// per-execution semantics — including the order of convergence
// checkpoints relative to observations — reproduced at flush time
// (byte identity proven by internal/difftest). Samplers that draw
// fresh per-execution randomness (RandomSampler) cannot, and keep the
// exact closure path.
type BatchSampler interface {
	Sampler
	// NextRun consumes up to max pending executions (max ≥ 1) and
	// reports whether they are profiled, how many were consumed
	// (1 ≤ n ≤ max), and whether the current phase's final execution
	// is among them. When boundary is set the caller must invoke
	// EndPhase — for a take run, between observing value n-1 and value
	// n, matching the exact machine's checkpoint-before-last-
	// observation order (shouldProfile decrements, checkpoints, then
	// lets the value be observed).
	NextRun(max uint64) (take bool, n uint64, boundary bool)
	// EndPhase performs the phase-boundary transition — the
	// convergence checkpoint for the convergent sampler, a no-op for
	// samplers whose NextRun already advanced the phase state.
	EndPhase(site *SiteStats)
}

// sampledSink replays a batch-replayable sampler over one site's
// buffered value stream. It is the flush target wiring sampled sites
// into vm.ValueBuffer: the VM delivers every executed value in order,
// and the sink partitions the batch into the sampler's take/skip runs.
type sampledSink struct {
	site    *SiteStats
	sampler BatchSampler
}

// ObserveBatch implements vm.ValueSink.
func (k *sampledSink) ObserveBatch(vals []int64) {
	for len(vals) > 0 {
		take, n, boundary := k.sampler.NextRun(uint64(len(vals)))
		if n == 0 || n > uint64(len(vals)) {
			panic("core: batch sampler returned run length out of range")
		}
		if take {
			if boundary {
				k.site.ObserveBatch(vals[:n-1])
				k.sampler.EndPhase(k.site)
				k.site.ObserveBatch(vals[n-1 : n])
			} else {
				k.site.ObserveBatch(vals[:n])
			}
		} else {
			k.site.Skipped += n
			if boundary {
				k.sampler.EndPhase(k.site)
			}
		}
		vals = vals[n:]
	}
}

// ShouldProfile implements Sampler for the convergent state machine.
func (c *convState) ShouldProfile(site *SiteStats) bool { return c.shouldProfile(site) }

// NextRun implements BatchSampler: the remainder of the current burst
// or skip period is one homogeneous run.
func (c *convState) NextRun(max uint64) (take bool, n uint64, boundary bool) {
	n = c.remaining
	boundary = n <= max
	if !boundary {
		n = max
	}
	c.remaining -= n
	return c.profiling, n, boundary
}

// EndPhase implements BatchSampler: the convergence checkpoint at a
// burst boundary, or re-arming the next burst at a skip boundary.
func (c *convState) EndPhase(site *SiteStats) {
	if c.profiling {
		c.checkpoint(site)
		return
	}
	c.profiling = true
	c.remaining = c.cfg.BurstLen
}

// NewConvergentFactory returns a factory for the paper's convergent
// sampler; it panics on an invalid config (call Validate first, or go
// through profiler Options, which reject bad configs with an error).
func NewConvergentFactory(cfg ConvergentConfig) SamplerFactory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return func() Sampler { return newConvState(&cfg) }
}

// PeriodicSampler profiles exactly one execution out of every Every.
type PeriodicSampler struct {
	Every uint64
	n     uint64
}

// ShouldProfile implements Sampler.
func (p *PeriodicSampler) ShouldProfile(*SiteStats) bool {
	p.n++
	if p.n >= p.Every {
		p.n = 0
		return true
	}
	return false
}

// NextRun implements BatchSampler: Every-1 skips, then the one
// profiled execution closing the cycle.
func (p *PeriodicSampler) NextRun(max uint64) (take bool, n uint64, boundary bool) {
	if p.Every <= 1 {
		return true, max, false
	}
	rem := p.Every - 1 - p.n
	if rem == 0 {
		p.n = 0
		return true, 1, true
	}
	if rem > max {
		p.n += max
		return false, max, false
	}
	p.n += rem
	return false, rem, true
}

// EndPhase implements BatchSampler (NextRun already advanced the
// cycle state).
func (p *PeriodicSampler) EndPhase(*SiteStats) {}

// NewPeriodicFactory samples 1-in-every executions deterministically.
func NewPeriodicFactory(every uint64) SamplerFactory {
	if every == 0 {
		every = 1
	}
	return func() Sampler { return &PeriodicSampler{Every: every} }
}

// RandomSampler profiles each execution independently with probability
// Prob, using a per-site xorshift generator so runs stay deterministic.
type RandomSampler struct {
	// Threshold compares against the generator's low 32 bits.
	threshold uint64
	state     uint64
}

// ShouldProfile implements Sampler.
func (r *RandomSampler) ShouldProfile(*SiteStats) bool {
	// xorshift64*
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	x := (r.state * 2685821657736338717) >> 32
	return x&0xffffffff < r.threshold
}

// NewRandomFactory samples with the given probability; each site gets
// its own deterministic stream derived from seed.
func NewRandomFactory(prob float64, seed uint64) SamplerFactory {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	threshold := uint64(prob * float64(1<<32))
	next := seed
	return func() Sampler {
		next = next*6364136223846793005 + 1442695040888963407
		s := next
		if s == 0 {
			s = 0x9e3779b97f4a7c15
		}
		return &RandomSampler{threshold: threshold, state: s}
	}
}

// BurstSampler profiles BurstLen consecutive executions out of every
// Interval — the CPI-style fixed duty-cycle burst sampling, without the
// convergence adaptivity.
type BurstSampler struct {
	BurstLen uint64
	Interval uint64
	n        uint64
}

// ShouldProfile implements Sampler.
func (b *BurstSampler) ShouldProfile(*SiteStats) bool {
	on := b.n < b.BurstLen
	b.n++
	if b.n >= b.Interval {
		b.n = 0
	}
	return on
}

// NextRun implements BatchSampler: the remainder of the current
// burst (or of the skip tail of the interval) is one homogeneous run.
func (b *BurstSampler) NextRun(max uint64) (take bool, n uint64, boundary bool) {
	if b.Interval == 0 {
		// Degenerate direct construction: ShouldProfile resets the
		// cycle every execution, so the burst either always or never
		// samples.
		return b.BurstLen > 0, max, false
	}
	burst := b.BurstLen
	if burst > b.Interval {
		burst = b.Interval
	}
	take = b.n < burst
	var rem uint64
	if take {
		rem = burst - b.n
	} else {
		rem = b.Interval - b.n
	}
	if rem > max {
		b.n += max
		return take, max, false
	}
	b.n += rem
	if b.n >= b.Interval {
		b.n = 0
	}
	return take, rem, true
}

// EndPhase implements BatchSampler (NextRun already advanced the
// cycle state).
func (b *BurstSampler) EndPhase(*SiteStats) {}

// NewBurstFactory samples burstLen-of-interval executions.
func NewBurstFactory(burstLen, interval uint64) SamplerFactory {
	if interval == 0 {
		interval = 1
	}
	if burstLen > interval {
		burstLen = interval
	}
	return func() Sampler { return &BurstSampler{BurstLen: burstLen, Interval: interval} }
}
