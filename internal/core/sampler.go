package core

// Sampler decides, per execution of a profiled site, whether the
// expensive analysis path runs. The convergent sampler (convergent.go)
// is the paper's contribution; PeriodicSampler, RandomSampler and
// BurstSampler are the baselines the thesis's related-work discussion
// raises when asking whether CPI-style random sampling "is sufficient
// for value profiling" (its stated open question).
type Sampler interface {
	// ShouldProfile advances the sampler by one execution of the site
	// and reports whether this execution is profiled. The site's
	// cumulative statistics are available for adaptive policies.
	ShouldProfile(site *SiteStats) bool
}

// SamplerFactory creates one independent Sampler per profiled site.
type SamplerFactory func() Sampler

// ShouldProfile implements Sampler for the convergent state machine.
func (c *convState) ShouldProfile(site *SiteStats) bool { return c.shouldProfile(site) }

// NewConvergentFactory returns a factory for the paper's convergent
// sampler; it panics on an invalid config (call Validate first, or go
// through profiler Options, which reject bad configs with an error).
func NewConvergentFactory(cfg ConvergentConfig) SamplerFactory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return func() Sampler { return newConvState(&cfg) }
}

// PeriodicSampler profiles exactly one execution out of every Every.
type PeriodicSampler struct {
	Every uint64
	n     uint64
}

// ShouldProfile implements Sampler.
func (p *PeriodicSampler) ShouldProfile(*SiteStats) bool {
	p.n++
	if p.n >= p.Every {
		p.n = 0
		return true
	}
	return false
}

// NewPeriodicFactory samples 1-in-every executions deterministically.
func NewPeriodicFactory(every uint64) SamplerFactory {
	if every == 0 {
		every = 1
	}
	return func() Sampler { return &PeriodicSampler{Every: every} }
}

// RandomSampler profiles each execution independently with probability
// Prob, using a per-site xorshift generator so runs stay deterministic.
type RandomSampler struct {
	// Threshold compares against the generator's low 32 bits.
	threshold uint64
	state     uint64
}

// ShouldProfile implements Sampler.
func (r *RandomSampler) ShouldProfile(*SiteStats) bool {
	// xorshift64*
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	x := (r.state * 2685821657736338717) >> 32
	return x&0xffffffff < r.threshold
}

// NewRandomFactory samples with the given probability; each site gets
// its own deterministic stream derived from seed.
func NewRandomFactory(prob float64, seed uint64) SamplerFactory {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	threshold := uint64(prob * float64(1<<32))
	next := seed
	return func() Sampler {
		next = next*6364136223846793005 + 1442695040888963407
		s := next
		if s == 0 {
			s = 0x9e3779b97f4a7c15
		}
		return &RandomSampler{threshold: threshold, state: s}
	}
}

// BurstSampler profiles BurstLen consecutive executions out of every
// Interval — the CPI-style fixed duty-cycle burst sampling, without the
// convergence adaptivity.
type BurstSampler struct {
	BurstLen uint64
	Interval uint64
	n        uint64
}

// ShouldProfile implements Sampler.
func (b *BurstSampler) ShouldProfile(*SiteStats) bool {
	on := b.n < b.BurstLen
	b.n++
	if b.n >= b.Interval {
		b.n = 0
	}
	return on
}

// NewBurstFactory samples burstLen-of-interval executions.
func NewBurstFactory(burstLen, interval uint64) SamplerFactory {
	if interval == 0 {
		interval = 1
	}
	if burstLen > interval {
		burstLen = interval
	}
	return func() Sampler { return &BurstSampler{BurstLen: burstLen, Interval: interval} }
}
