package core

import (
	"valueprof/internal/atom"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Timeline records how a site's cumulative Inv-Top(1) evolves over its
// executions — the thesis's convergence-over-time figures, which
// motivate convergent sampling: most sites' invariance stabilizes long
// before the run ends, so profiling past that point is wasted work.
type Timeline struct {
	PC    int
	Name  string
	Every uint64 // observations between points
	// Points[i] is the cumulative Inv-Top(1) after (i+1)*Every
	// observations.
	Points []float64
	Stats  *SiteStats
}

// Final returns the site's final cumulative invariance.
func (t *Timeline) Final() float64 { return t.Stats.InvTop(1) }

// ConvergedAt returns the earliest fraction of the stream (0,1] after
// which every recorded point stays within eps of the final invariance;
// it returns 1 if the site never settles before the last point.
func (t *Timeline) ConvergedAt(eps float64) float64 {
	if len(t.Points) == 0 {
		return 1
	}
	final := t.Final()
	settled := len(t.Points) // first index from which all points are close
	for i := len(t.Points) - 1; i >= 0; i-- {
		d := t.Points[i] - final
		if d < 0 {
			d = -d
		}
		if d > eps {
			break
		}
		settled = i
	}
	return float64(settled+1) / float64(len(t.Points)+1)
}

// TimelineProfiler is an ATOM tool recording invariance timelines for
// the selected instructions.
type TimelineProfiler struct {
	// Filter selects instructions (nil = result-producing).
	Filter func(isa.Inst) bool
	// TNV configures the per-site table (zero value = paper default).
	TNV TNVConfig
	// Every sets the checkpoint spacing in observations (default 1000).
	Every uint64

	sites map[int]*Timeline
}

// NewTimelineProfiler creates the tool.
func NewTimelineProfiler(filter func(isa.Inst) bool, tnv TNVConfig, every uint64) *TimelineProfiler {
	if tnv.Size == 0 {
		tnv = DefaultTNVConfig()
	}
	if every == 0 {
		every = 1000
	}
	return &TimelineProfiler{Filter: filter, TNV: tnv, Every: every, sites: make(map[int]*Timeline)}
}

// Instrument implements atom.Tool.
func (tp *TimelineProfiler) Instrument(ix *atom.Instrumenter) {
	filter := tp.Filter
	if filter == nil {
		filter = func(in isa.Inst) bool { return in.Op.HasDest() }
	}
	cfg := tp.TNV
	ix.ForEachInst(filter, func(pc int, in isa.Inst) {
		tl := &Timeline{
			PC:    pc,
			Name:  ix.Prog.SiteName(pc),
			Every: tp.Every,
			Stats: NewSiteStats(pc, ix.Prog.SiteName(pc), cfg, false),
		}
		tp.sites[pc] = tl
		ix.AddAfter(pc, func(ev *vm.Event) {
			tl.Stats.Observe(ev.Value)
			if tl.Stats.Exec%tl.Every == 0 {
				tl.Points = append(tl.Points, tl.Stats.InvTop(1))
			}
		})
	})
}

// Timelines returns sites with at least minPoints recorded checkpoints,
// most-executed first.
func (tp *TimelineProfiler) Timelines(minPoints int) []*Timeline {
	var out []*Timeline
	for _, tl := range tp.sites {
		if len(tl.Points) >= minPoints {
			out = append(out, tl)
		}
	}
	// Sort by executions descending, then pc.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Stats.Exec > b.Stats.Exec || (a.Stats.Exec == b.Stats.Exec && a.PC < b.PC) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Sparkline renders a timeline as ASCII levels (0-9) for reports.
func (t *Timeline) Sparkline(width int) string {
	if len(t.Points) == 0 {
		return ""
	}
	out := make([]byte, 0, width)
	for i := 0; i < width; i++ {
		idx := i * len(t.Points) / width
		level := int(t.Points[idx] * 9.999)
		if level > 9 {
			level = 9
		}
		if level < 0 {
			level = 0
		}
		out = append(out, byte('0'+level))
	}
	return string(out)
}
