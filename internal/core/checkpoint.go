package core

import (
	"bytes"
	"compress/zlib"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/atomicio"
	"valueprof/internal/vm"
)

// This file implements crash-safe periodic checkpointing of a value
// profiling run. A checkpoint captures both halves of the run's state:
// the profiler side (every site's full TNV table with its replacement
// counters, plus the scalar counters) and the machine side (a
// compressed VM snapshot). Restoring both and re-running from the
// snapshot therefore reproduces exactly the counts an uninterrupted
// run would have produced — the re-executed suffix re-observes the
// values the crash discarded.
//
// Checkpoint files are JSON for inspectability, wrapped in a small
// envelope carrying a magic string and a CRC-32 of the payload so a
// torn or bit-rotted file is detected before any of it is trusted.
// Writes go through internal/atomicio, so a crash mid-write leaves the
// previous checkpoint intact.

// DefaultCheckpointEvery is the default instruction interval between
// snapshots (~4M instructions).
const DefaultCheckpointEvery = 1 << 22

const checkpointMagic = "VPCKPT1"

// checkpointVersion is the envelope's minor version. Version 0 (the
// field is omitted by old writers) is the PR-1 format, which recorded
// only the run-wide sampler-skip total; version 1 adds the per-site
// skip counters (SiteState.Skipped) so a resumed run's duty cycle is
// attributed to the right sites; version 2 adds the per-table drop
// counter (TNVState.Dropped) so values a full, fully-steady table
// discarded stay accounted for across a resume. Readers accept every
// version up to the current one; old files stay loadable (missing
// fields restore as zero, matching what those writers could observe).
const checkpointVersion = 2

// TNVState is the full serialized state of one TNV table: every live
// entry (not just the report-time top K) plus the update, drop, and
// periodic-clear counters, so a restored table continues byte-for-byte
// where the original left off.
type TNVState struct {
	Entries    []TNVEntry `json:"entries"`
	Updates    uint64     `json:"updates"`
	Dropped    uint64     `json:"dropped,omitempty"` // envelope version ≥ 2
	SinceClear uint64     `json:"sinceClear"`
	Clears     uint64     `json:"clears"`
}

// SiteState is the checkpointed state of one profiled site.
type SiteState struct {
	PC      int      `json:"pc"`
	Name    string   `json:"name"`
	Exec    uint64   `json:"exec"`
	Skipped uint64   `json:"skipped,omitempty"` // envelope version ≥ 1
	LVPHits uint64   `json:"lvpHits"`
	Zeros   uint64   `json:"zeros"`
	Last    int64    `json:"last"`
	HasLast bool     `json:"hasLast"`
	TNV     TNVState `json:"tnv"`
}

// VMState is the checkpointed machine state. Mem holds the guest
// memory zlib-compressed (mostly zeros, so it compresses to almost
// nothing); MemLen is the uncompressed size.
type VMState struct {
	PC            int     `json:"pc"`
	Regs          []int64 `json:"regs"`
	MemLen        int     `json:"memLen"`
	Mem           []byte  `json:"mem"`
	Cycles        uint64  `json:"cycles"`
	InstCount     uint64  `json:"instCount"`
	AnalysisCalls uint64  `json:"analysisCalls"`
	Output        string  `json:"output"`
	InputPos      int     `json:"inputPos"`
	ExitStatus    int64   `json:"exitStatus"`
	Halted        bool    `json:"halted"`
}

// Checkpoint is one snapshot of a profiling run in progress.
type Checkpoint struct {
	Program string      `json:"program"`
	Input   string      `json:"input"`
	TNV     TNVConfig   `json:"tnv"`
	Skipped uint64      `json:"skipped"`
	Sites   []SiteState `json:"sites"`
	VM      *VMState    `json:"vm,omitempty"`
}

// InstCount returns the instruction count at which the checkpoint was
// taken (0 when no VM state was captured).
func (ck *Checkpoint) InstCount() uint64 {
	if ck.VM == nil {
		return 0
	}
	return ck.VM.InstCount
}

type checkpointEnvelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version,omitempty"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// WriteCheckpoint serializes ck with its integrity envelope.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	env := checkpointEnvelope{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		CRC32:   crc32.ChecksumIEEE(payload),
		Payload: payload,
	}
	return json.NewEncoder(w).Encode(&env)
}

// ReadCheckpoint deserializes and verifies a checkpoint written by
// WriteCheckpoint: magic, payload CRC, and state invariants are all
// checked before anything is trusted.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var env checkpointEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	if env.Magic != checkpointMagic {
		return nil, fmt.Errorf("core: not a checkpoint file (magic %q)", env.Magic)
	}
	if env.Version > checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d is newer than supported %d", env.Version, checkpointVersion)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		return nil, fmt.Errorf("core: checkpoint corrupt: crc %08x, want %08x", got, env.CRC32)
	}
	var ck Checkpoint
	if err := json.Unmarshal(env.Payload, &ck); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if err := ck.validate(); err != nil {
		return nil, fmt.Errorf("core: invalid checkpoint: %w", err)
	}
	return &ck, nil
}

// LoadCheckpoint reads and verifies the checkpoint file at path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// CheckpointLoadReport says what the tolerant checkpoint loader
// (ReadCheckpointPolicy under RepairDrop) recovered from a damaged
// file and how far the recovered state can be trusted.
type CheckpointLoadReport struct {
	// Resumable means the envelope verified end to end (magic, CRC,
	// known version) and the VM state validated: exact resume is safe.
	// A non-resumable checkpoint's sites are still usable for
	// reporting and merging, but restoring its machine state — or
	// seeding a profiler that then re-runs from scratch — would
	// double-count, so callers must start the run over.
	Resumable bool
	// Damaged is set when envelope-level damage (CRC mismatch, version
	// skew) was detected and bypassed.
	Damaged bool
	// SitesDropped counts per-site states discarded for violating
	// their invariants.
	SitesDropped int
	// Problems holds human-readable descriptions of what was found.
	Problems []string
}

func (r *CheckpointLoadReport) addProblem(format string, args ...any) {
	if len(r.Problems) < maxReportedProblems {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// ReadCheckpointPolicy is the tolerant sibling of ReadCheckpoint.
// Under RepairNone it behaves identically (and a successful load
// reports Resumable). Under RepairDrop it degrades instead of
// hard-failing where anything trustworthy remains: a CRC mismatch or
// a version newer than this reader salvages every site that still
// validates but clears the VM state (Resumable=false — resuming
// unverified machine state would execute garbage), and individually
// invalid sites are dropped and counted. Structural damage that
// leaves nothing to trust — unreadable or truncated envelope, foreign
// magic, undecodable payload — still returns an error; callers treat
// that as "no checkpoint" and start fresh.
func ReadCheckpointPolicy(r io.Reader, policy RepairPolicy) (*Checkpoint, *CheckpointLoadReport, error) {
	if policy == RepairNone {
		ck, err := ReadCheckpoint(r)
		if err != nil {
			return nil, nil, err
		}
		return ck, &CheckpointLoadReport{Resumable: ck.VM != nil}, nil
	}

	rep := &CheckpointLoadReport{}
	var env checkpointEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	if env.Magic != checkpointMagic {
		return nil, nil, fmt.Errorf("core: not a checkpoint file (magic %q)", env.Magic)
	}
	trusted := true
	if env.Version > checkpointVersion {
		trusted = false
		rep.Damaged = true
		rep.addProblem("version %d newer than supported %d: salvaging known fields, resume disabled", env.Version, checkpointVersion)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		trusted = false
		rep.Damaged = true
		rep.addProblem("payload crc %08x does not match recorded %08x: salvaging validating sites, resume disabled", got, env.CRC32)
	}
	var ck Checkpoint
	if err := json.Unmarshal(env.Payload, &ck); err != nil {
		return nil, nil, fmt.Errorf("core: decoding checkpoint payload: %w", err)
	}
	if err := ck.TNV.validate(); err != nil {
		// Without a trustworthy table configuration no site state is
		// interpretable.
		return nil, nil, fmt.Errorf("core: checkpoint TNV config unusable: %w", err)
	}

	kept := ck.Sites[:0]
	seen := make(map[int]bool, len(ck.Sites))
	for i := range ck.Sites {
		s := ck.Sites[i]
		if seen[s.PC] {
			rep.SitesDropped++
			rep.addProblem("dropped duplicate site pc %d", s.PC)
			continue
		}
		if err := validateSiteState(&s, ck.TNV); err != nil {
			rep.SitesDropped++
			rep.addProblem("dropped %v", err)
			continue
		}
		seen[s.PC] = true
		kept = append(kept, s)
	}
	ck.Sites = kept

	if ck.VM != nil {
		if err := validateVMState(ck.VM); err != nil {
			trusted = false
			rep.addProblem("vm state dropped: %v", err)
			ck.VM = nil
		}
	}
	if !trusted {
		ck.VM = nil
	}
	rep.Resumable = trusted && ck.VM != nil
	return &ck, rep, nil
}

// LoadCheckpointPolicy reads the checkpoint at path under the given
// repair policy (see ReadCheckpointPolicy).
func LoadCheckpointPolicy(path string, policy RepairPolicy) (*Checkpoint, *CheckpointLoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadCheckpointPolicy(f, policy)
}

// SaveAtomic atomically replaces path with this checkpoint; a crash
// mid-write leaves the previous file untouched.
func (ck *Checkpoint) SaveAtomic(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteCheckpoint(w, ck)
	})
}

func (ck *Checkpoint) validate() error {
	if err := ck.TNV.validate(); err != nil {
		return err
	}
	seen := make(map[int]bool, len(ck.Sites))
	for i := range ck.Sites {
		s := &ck.Sites[i]
		if seen[s.PC] {
			return fmt.Errorf("duplicate site pc %d", s.PC)
		}
		if err := validateSiteState(s, ck.TNV); err != nil {
			return err
		}
		seen[s.PC] = true
	}
	if ck.VM != nil {
		return validateVMState(ck.VM)
	}
	return nil
}

// validateSiteState enforces one site's internal invariants (PC,
// counter bounds, TNV consistency) against the checkpoint's table
// configuration.
func validateSiteState(s *SiteState, cfg TNVConfig) error {
	if s.PC < 0 {
		return fmt.Errorf("site pc %d: negative pc", s.PC)
	}
	if s.LVPHits > s.Exec || s.Zeros > s.Exec {
		return fmt.Errorf("site pc %d: counters exceed %d executions", s.PC, s.Exec)
	}
	if s.TNV.Updates != s.Exec {
		return fmt.Errorf("site pc %d: TNV updates %d != executions %d", s.PC, s.TNV.Updates, s.Exec)
	}
	if len(s.TNV.Entries) > cfg.Size {
		return fmt.Errorf("site pc %d: %d TNV entries exceed table size %d", s.PC, len(s.TNV.Entries), cfg.Size)
	}
	var sum uint64
	for _, e := range s.TNV.Entries {
		sum += e.Count
	}
	if s.TNV.Dropped > s.TNV.Updates || sum > s.TNV.Updates-s.TNV.Dropped {
		return fmt.Errorf("site pc %d: TNV counts %d + dropped %d exceed updates %d",
			s.PC, sum, s.TNV.Dropped, s.TNV.Updates)
	}
	return nil
}

func validateVMState(v *VMState) error {
	if v.MemLen <= 0 {
		return fmt.Errorf("vm state: bad memory size %d", v.MemLen)
	}
	if v.InputPos < 0 {
		return fmt.Errorf("vm state: negative input position")
	}
	return nil
}

// CaptureVM records the machine state into the checkpoint.
func (ck *Checkpoint) CaptureVM(v *vm.VM) error {
	snap := v.Snapshot()
	var buf bytes.Buffer
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(snap.Mem); err != nil {
		return fmt.Errorf("core: compressing vm memory: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: compressing vm memory: %w", err)
	}
	ck.VM = &VMState{
		PC:            snap.PC,
		Regs:          snap.Regs,
		MemLen:        len(snap.Mem),
		Mem:           buf.Bytes(),
		Cycles:        snap.Cycles,
		InstCount:     snap.InstCount,
		AnalysisCalls: snap.AnalysisCalls,
		Output:        snap.Output,
		InputPos:      snap.InputPos,
		ExitStatus:    snap.ExitStatus,
		Halted:        snap.Halted,
	}
	return nil
}

// RestoreVM rewinds v to the checkpointed machine state. The caller
// re-attaches instrumentation and re-supplies the run's input; resuming
// then continues the run as if it had never stopped.
func (ck *Checkpoint) RestoreVM(v *vm.VM) error {
	if ck.VM == nil {
		return fmt.Errorf("core: checkpoint has no vm state")
	}
	zr, err := zlib.NewReader(bytes.NewReader(ck.VM.Mem))
	if err != nil {
		return fmt.Errorf("core: decompressing vm memory: %w", err)
	}
	mem := make([]byte, ck.VM.MemLen)
	if _, err := io.ReadFull(zr, mem); err != nil {
		return fmt.Errorf("core: decompressing vm memory: %w", err)
	}
	zr.Close()
	return v.Restore(&vm.Snapshot{
		PC:            ck.VM.PC,
		Regs:          ck.VM.Regs,
		Mem:           mem,
		Cycles:        ck.VM.Cycles,
		InstCount:     ck.VM.InstCount,
		AnalysisCalls: ck.VM.AnalysisCalls,
		Output:        ck.VM.Output,
		InputPos:      ck.VM.InputPos,
		ExitStatus:    ck.VM.ExitStatus,
		Halted:        ck.VM.Halted,
	})
}

// siteState snapshots one live site.
func siteState(s *SiteStats) SiteState {
	return SiteState{
		PC:      s.PC,
		Name:    s.Name,
		Exec:    s.Exec,
		Skipped: s.Skipped,
		LVPHits: s.LVPHits,
		Zeros:   s.Zeros,
		Last:    s.last,
		HasLast: s.hasLast,
		TNV: TNVState{
			Entries:    append([]TNVEntry(nil), s.TNV.entries...),
			Updates:    s.TNV.updates,
			Dropped:    s.TNV.dropped,
			SinceClear: s.TNV.sinceClear,
			Clears:     s.TNV.clears,
		},
	}
}

// restoreSite rebuilds a live SiteStats from checkpointed state.
func restoreSite(st *SiteState, cfg TNVConfig) *SiteStats {
	s := NewSiteStats(st.PC, st.Name, cfg, false)
	s.Exec = st.Exec
	s.Skipped = st.Skipped
	s.LVPHits = st.LVPHits
	s.Zeros = st.Zeros
	s.last = st.Last
	s.hasLast = st.HasLast
	s.TNV.entries = append(s.TNV.entries[:0], st.TNV.Entries...)
	s.TNV.updates = st.TNV.Updates
	s.TNV.dropped = st.TNV.Dropped
	s.TNV.sinceClear = st.TNV.SinceClear
	s.TNV.clears = st.TNV.Clears
	return s
}

// CheckpointOf snapshots the profiler and (optionally) the VM into a
// checkpoint tagged with the program and input names. Batched value
// buffers are flushed first, so the captured tables cover every
// instruction executed up to this point.
func CheckpointOf(vp *ValueProfiler, v *vm.VM, programName, inputName string) (*Checkpoint, error) {
	vp.FlushBuffers()
	ck := &Checkpoint{
		Program: programName,
		Input:   inputName,
		TNV:     vp.opts.TNV,
		// The run-wide total is still written so version-0 readers keep
		// computing the correct duty cycle from this file.
		Skipped: vp.Skipped(),
	}
	pcs := make([]int, 0, len(vp.sites))
	for pc := range vp.sites {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		s := vp.sites[pc]
		if s.Exec == 0 && s.Skipped == 0 {
			continue
		}
		ck.Sites = append(ck.Sites, siteState(s))
	}
	if v != nil {
		if err := ck.CaptureVM(v); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

// Checkpointer is an atom.Tool that periodically snapshots a profiling
// run to a sidecar file. Attach it to the same run as the profiler it
// watches:
//
//	vp, _ := core.NewValueProfiler(opts)
//	ckpt := core.NewCheckpointer(vp, "run.ckpt", 0, "compress", "test")
//	atom.RunControlled(ctx, prog, ropts, vp, ckpt)
//
// A snapshot failure (disk full, permission) never kills the run: the
// error is recorded, the run continues, and the previous checkpoint
// file — written atomically — remains loadable.
type Checkpointer struct {
	Path    string
	Every   uint64
	Program string
	Input   string

	vp      *ValueProfiler
	next    uint64
	written uint64
	lastErr error
}

// NewCheckpointer creates a checkpointer snapshotting vp every `every`
// instructions (0 selects DefaultCheckpointEvery) to path.
func NewCheckpointer(vp *ValueProfiler, path string, every uint64, programName, inputName string) *Checkpointer {
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	return &Checkpointer{Path: path, Every: every, Program: programName, Input: inputName, vp: vp}
}

// Instrument implements atom.Tool.
func (c *Checkpointer) Instrument(ix *atom.Instrumenter) {
	ix.AddStep(func(v *vm.VM) error {
		if c.next == 0 {
			// Lazy arm: on a resumed run InstCount starts at the
			// checkpoint, so the first snapshot lands one full
			// interval later rather than immediately.
			c.next = v.InstCount + c.Every
			return nil
		}
		if v.InstCount < c.next {
			return nil
		}
		c.next = v.InstCount + c.Every
		if err := c.SnapshotNow(v); err != nil {
			c.lastErr = err
		}
		return nil
	})
}

// SnapshotNow writes a checkpoint of the current state immediately
// (also used on SIGINT to salvage a run being torn down).
func (c *Checkpointer) SnapshotNow(v *vm.VM) error {
	ck, err := CheckpointOf(c.vp, v, c.Program, c.Input)
	if err != nil {
		return err
	}
	if err := ck.SaveAtomic(c.Path); err != nil {
		return err
	}
	c.written++
	return nil
}

// Written returns how many checkpoints were successfully written.
func (c *Checkpointer) Written() uint64 { return c.written }

// Err returns the most recent snapshot failure, if any.
func (c *Checkpointer) Err() error { return c.lastErr }

// Seed preloads the profiler with checkpointed state so a resumed run
// continues accumulating into the restored TNV tables and counters.
// Must be called before the profiler instruments a program. The
// checkpoint's TNV configuration must match the profiler's: merging
// tables collected under different replacement policies would be
// statistically meaningless.
//
// Full-profile ground truth (TrackFull) and convergent-sampler burst
// state are not checkpointed: after a resume the full profile restarts
// empty and samplers re-converge, which only affects diagnostics, not
// the TNV profile itself.
func (p *ValueProfiler) Seed(ck *Checkpoint) error {
	if ck.TNV != p.opts.TNV {
		return fmt.Errorf("core: checkpoint TNV config %+v does not match profiler %+v", ck.TNV, p.opts.TNV)
	}
	if len(p.sites) > 0 {
		return fmt.Errorf("core: profiler already instrumented; seed before atom.Run")
	}
	p.seeded = make(map[int]*SiteStats, len(ck.Sites))
	var perSite uint64
	for i := range ck.Sites {
		st := &ck.Sites[i]
		p.seeded[st.PC] = restoreSite(st, p.opts.TNV)
		perSite += st.Skipped
	}
	// Version-0 checkpoints recorded only the run-wide skip total; keep
	// whatever the per-site counters cannot account for as an
	// unattributed baseline so DutyCycle survives the resume exactly.
	if ck.Skipped > perSite {
		p.seedSkipped = ck.Skipped - perSite
	}
	return nil
}
