package core

import (
	"math"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
)

func TestPeriodicSampler(t *testing.T) {
	s := NewPeriodicFactory(4)()
	profiled := 0
	for i := 0; i < 100; i++ {
		if s.ShouldProfile(nil) {
			profiled++
		}
	}
	if profiled != 25 {
		t.Errorf("periodic 1-in-4 profiled %d of 100", profiled)
	}
	// every=0 degrades to always.
	always := NewPeriodicFactory(0)()
	if !always.ShouldProfile(nil) {
		t.Error("every=0 should profile always")
	}
}

func TestRandomSamplerRate(t *testing.T) {
	f := NewRandomFactory(0.25, 42)
	s := f()
	n := 100000
	profiled := 0
	for i := 0; i < n; i++ {
		if s.ShouldProfile(nil) {
			profiled++
		}
	}
	rate := float64(profiled) / float64(n)
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("random sampler rate %.4f, want ~0.25", rate)
	}
	// Distinct sites get distinct streams.
	s2 := f()
	same := 0
	for i := 0; i < 1000; i++ {
		a := s.ShouldProfile(nil)
		b := s2.ShouldProfile(nil)
		if a == b {
			same++
		}
	}
	if same == 1000 {
		t.Error("two sites produced identical sampling streams")
	}
	// Deterministic across factories with the same seed.
	x := NewRandomFactory(0.5, 7)()
	y := NewRandomFactory(0.5, 7)()
	for i := 0; i < 100; i++ {
		if x.ShouldProfile(nil) != y.ShouldProfile(nil) {
			t.Fatal("random sampler not deterministic for equal seeds")
		}
	}
	// Clamping.
	if !NewRandomFactory(2.0, 1)().ShouldProfile(nil) {
		t.Error("prob>1 should clamp to always")
	}
	if NewRandomFactory(-1, 1)().ShouldProfile(nil) {
		t.Error("prob<0 should clamp to never")
	}
}

func TestBurstSampler(t *testing.T) {
	s := NewBurstFactory(3, 10)()
	var pattern []bool
	for i := 0; i < 20; i++ {
		pattern = append(pattern, s.ShouldProfile(nil))
	}
	for i, want := range []bool{true, true, true, false, false, false, false, false, false, false} {
		if pattern[i] != want || pattern[i+10] != want {
			t.Fatalf("burst pattern wrong at %d: %v", i, pattern)
		}
	}
	// burstLen > interval clamps.
	s2 := NewBurstFactory(10, 4)()
	on := 0
	for i := 0; i < 8; i++ {
		if s2.ShouldProfile(nil) {
			on++
		}
	}
	if on != 8 {
		t.Errorf("clamped burst profiled %d of 8", on)
	}
}

func TestConvergentFactoryPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	NewConvergentFactory(ConvergentConfig{})
}

// TestSamplerPluggedIntoProfiler drives the profiler with a periodic
// sampler over the phase program and checks duty cycle accounting.
func TestSamplerPluggedIntoProfiler(t *testing.T) {
	prog, err := asm.Assemble(phaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewValueProfiler(Options{
		TNV:     DefaultTNVConfig(),
		Sampler: NewPeriodicFactory(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	pr := vp.Profile()
	if d := pr.DutyCycle(); math.Abs(d-0.1) > 0.01 {
		t.Errorf("periodic duty cycle = %v, want ~0.1", d)
	}
	// Periodic sampling of the constant site still estimates inv = 1.
	if got := pr.Site(1).InvTop(1); got != 1.0 {
		t.Errorf("sampled constant-site inv = %v", got)
	}
	// And of the 50/50 phase site lands near 0.5.
	if got := pr.Site(2).InvTop(1); math.Abs(got-0.5) > 0.05 {
		t.Errorf("sampled phase-site inv = %v, want ~0.5", got)
	}
}

func TestConvergentTakesPrecedenceOverSampler(t *testing.T) {
	prog, err := asm.Assemble(phaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConvergentConfig()
	vp, err := NewValueProfiler(Options{
		TNV:        DefaultTNVConfig(),
		Convergent: &cfg,
		Sampler:    NewPeriodicFactory(2), // must be ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	// Convergent profiling of a converging site gives duty far from
	// the periodic 0.5.
	if d := vp.Profile().DutyCycle(); math.Abs(d-0.5) < 0.05 {
		t.Errorf("duty %v suggests the periodic sampler ran instead of convergent", d)
	}
}
