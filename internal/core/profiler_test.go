package core

import (
	"math"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/isa"
)

const loopSrc = `
        .proc main
main:   li t0, 100
loop:   li t1, 42
        add t2, t1, t0
        ldq t3, cell
        addi t0, t0, -1
        bne t0, loop
        syscall exit
        .endproc
        .data
cell:   .word 7
`

// pcs in loopSrc: 0 li t0 | 1 li t1 | 2 add | 3 ldq | 4 addi | 5 bne | 6 syscall

func profileLoop(t *testing.T, opts Options) *Profile {
	t.Helper()
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewValueProfiler(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	return vp.Profile()
}

func TestProfilerSiteSelection(t *testing.T) {
	pr := profileLoop(t, Options{TNV: DefaultTNVConfig(), TrackFull: true})
	// Sites: 0,1,2,3,4 (result-producing); not 5 (branch) or 6 (syscall).
	if len(pr.Sites) != 5 {
		t.Fatalf("sites = %d, want 5", len(pr.Sites))
	}
	if pr.Site(5) != nil || pr.Site(6) != nil {
		t.Error("branch/syscall profiled")
	}
}

func TestProfilerMetricsExact(t *testing.T) {
	pr := profileLoop(t, Options{TNV: DefaultTNVConfig(), TrackFull: true})

	constant := pr.Site(1) // li t1, 42 — 100 executions of 42
	if constant.Exec != 100 || constant.InvTop(1) != 1.0 {
		t.Errorf("constant site: exec=%d inv=%v", constant.Exec, constant.InvTop(1))
	}
	if constant.LVP() != 0.99 {
		t.Errorf("constant site LVP = %v", constant.LVP())
	}

	varying := pr.Site(2) // 42+t0, all distinct
	if varying.LVP() != 0 || varying.InvAll(1) != 0.01 {
		t.Errorf("varying site: LVP=%v invAll=%v", varying.LVP(), varying.InvAll(1))
	}

	load := pr.Site(3) // always loads 7
	if load.InvTop(1) != 1.0 || load.PctZero() != 0 {
		t.Errorf("load site: inv=%v zero=%v", load.InvTop(1), load.PctZero())
	}

	counter := pr.Site(4) // 99..0: exactly one zero
	if counter.Zeros != 1 {
		t.Errorf("counter zeros = %d", counter.Zeros)
	}

	once := pr.Site(0)
	if once.Exec != 1 {
		t.Errorf("entry site exec = %d", once.Exec)
	}
}

func TestProfilerLoadsOnlyFilter(t *testing.T) {
	pr := profileLoop(t, Options{Filter: LoadsOnly, TNV: DefaultTNVConfig()})
	if len(pr.Sites) != 1 || pr.Sites[0].PC != 3 {
		t.Fatalf("loads-only sites = %+v", pr.Sites)
	}
}

func TestClassOnlyFilter(t *testing.T) {
	pr := profileLoop(t, Options{Filter: ClassOnly(isa.ClassCompare), TNV: DefaultTNVConfig()})
	if len(pr.Sites) != 0 {
		t.Fatalf("compare sites = %d, want 0", len(pr.Sites))
	}
	pr = profileLoop(t, Options{Filter: ClassOnly(isa.ClassALU), TNV: DefaultTNVConfig()})
	// ALU sites: 0 (li), 1 (li), 2 (add), 4 (addi).
	if len(pr.Sites) != 4 {
		t.Fatalf("alu sites = %d, want 4", len(pr.Sites))
	}
}

func TestProfileAggregateAndTopSites(t *testing.T) {
	pr := profileLoop(t, Options{TNV: DefaultTNVConfig(), TrackFull: true})
	m := pr.Aggregate()
	if m.Execs != 401 { // 1 + 4*100
		t.Errorf("execs = %d, want 401", m.Execs)
	}
	top := pr.TopSites(2)
	if len(top) != 2 || top[0].Exec != 100 {
		t.Errorf("top sites = %+v", top)
	}
	if pr.DutyCycle() != 1.0 {
		t.Errorf("full profiling duty = %v", pr.DutyCycle())
	}
	counts, frac := pr.CountByClass(DefaultThresholds())
	if counts[Invariant] < 2 { // li 42, ldq 7 (and li 100 with 1 exec)
		t.Errorf("invariant count = %d; counts=%v frac=%v", counts[Invariant], counts, frac)
	}
	var sum float64
	for _, f := range frac {
		sum += f
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("class fractions sum to %v", sum)
	}
}

func TestProfilerRejectsBadOptions(t *testing.T) {
	if _, err := NewValueProfiler(Options{TNV: TNVConfig{Size: 3, Steady: 9}}); err == nil {
		t.Error("bad TNV config accepted")
	}
	bad := DefaultConvergentConfig()
	bad.Epsilon = 0
	if _, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), Convergent: &bad}); err == nil {
		t.Error("bad convergent config accepted")
	}
}

// --- convergent sampling ---

const phaseSrc = `
        .proc main
main:   li t0, 200000
loop:   li t1, 42
        cmplti t2, t0, 100000
        addi t0, t0, -1
        bne t0, loop
        syscall exit
        .endproc
`

// pcs: 0 li t0 | 1 li t1 (constant) | 2 cmplti (phase change at half) | 3 addi | 4 bne | 5 syscall

func TestConvergentReducesOverhead(t *testing.T) {
	prog, err := asm.Assemble(phaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth.
	fullVP, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), TrackFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, fullVP); err != nil {
		t.Fatal(err)
	}
	full := fullVP.Profile()

	cfg := ConvergentConfig{BurstLen: 1000, InitialSkip: 4000, MaxSkip: 64000, Epsilon: 0.02}
	convVP, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), Convergent: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, convVP); err != nil {
		t.Fatal(err)
	}
	conv := convVP.Profile()

	if conv.Skipped == 0 {
		t.Fatal("sampler never skipped")
	}
	duty := conv.DutyCycle()
	if duty >= 0.5 {
		t.Errorf("duty cycle = %v, want well below 0.5", duty)
	}

	// Accuracy: the constant site's estimate must be spot on.
	if got := conv.Site(1).InvTop(1); math.Abs(got-1.0) > 0.01 {
		t.Errorf("constant site estimated inv = %v, want ~1", got)
	}
	// The phase site's true invariance is 0.5; the sampled estimate
	// must be in the right region (the sampler re-arms on the drift).
	truth := full.Site(2).InvAll(1)
	if math.Abs(truth-0.5) > 1e-3 {
		t.Fatalf("phase site ground truth = %v, want 0.5", truth)
	}
	if got := conv.Site(2).InvTop(1); math.Abs(got-truth) > 0.25 {
		t.Errorf("phase site estimated inv = %v, truth %v", got, truth)
	}
}

func TestConvergentReArmsOnPhaseChange(t *testing.T) {
	prog, err := asm.Assemble(phaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConvergentConfig{BurstLen: 500, InitialSkip: 2000, MaxSkip: 32000, Epsilon: 0.02}
	vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), Convergent: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	// The phase site must have been profiled more than the constant
	// site: the invariance drift forces re-arming.
	constSite := vp.Profile().Site(1)
	phaseSite := vp.Profile().Site(2)
	if phaseSite.Exec <= constSite.Exec {
		t.Errorf("phase site profiled %d ≤ constant site %d; sampler did not re-arm",
			phaseSite.Exec, constSite.Exec)
	}
}

func TestConvStateMachine(t *testing.T) {
	cfg := ConvergentConfig{BurstLen: 10, InitialSkip: 20, MaxSkip: 40, Epsilon: 0.05}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cs := newConvState(&cfg)
	site := NewSiteStats(0, "s", DefaultTNVConfig(), false)
	profile := func(n int) (profiled int) {
		for i := 0; i < n; i++ {
			if cs.shouldProfile(site) {
				site.Observe(9)
				profiled++
			}
		}
		return profiled
	}
	// First burst: all 10 profiled; the first checkpoint is never
	// "converged", so profiling continues with a fresh burst.
	if got := profile(10); got != 10 {
		t.Fatalf("first burst profiled %d", got)
	}
	if !cs.profiling || cs.remaining != 10 {
		t.Fatalf("after first burst: profiling=%v remaining=%d, want continuous profiling", cs.profiling, cs.remaining)
	}
	// Second burst: invariance stable → converged → first skip is
	// InitialSkip (20).
	if got := profile(10); got != 10 {
		t.Fatalf("second burst profiled %d", got)
	}
	if cs.profiling || cs.remaining != 20 {
		t.Fatalf("after first convergence: profiling=%v remaining=%d, want skip 20", cs.profiling, cs.remaining)
	}
	// Skip 20 + burst 10 → converged again → skip doubles to 40.
	if got := profile(30); got != 10 {
		t.Fatalf("third round profiled %d", got)
	}
	if cs.remaining != 40 {
		t.Fatalf("after second convergence remaining = %d, want 40", cs.remaining)
	}
	profile(50) // skip 40 + burst 10 → doubling capped at MaxSkip 40
	if cs.remaining != 40 {
		t.Fatalf("after third convergence remaining = %d, want cap 40", cs.remaining)
	}
	if cs.checkpoints != 4 {
		t.Errorf("checkpoints = %d, want 4", cs.checkpoints)
	}
}

// ConvergentConfig.Validate error paths are covered table-driven in
// convergent_test.go.
