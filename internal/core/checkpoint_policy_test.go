package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"valueprof/internal/atom"
	"valueprof/internal/vm"
)

// ckptWithVM runs the checkpoint workload to completion and snapshots
// both profiler and machine state, then returns the serialized bytes.
func ckptWithVM(t *testing.T) (*Checkpoint, []byte) {
	t.Helper()
	prog := assembleCkpt(t)
	vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
	if err != nil {
		t.Fatal(err)
	}
	v := atom.Prepare(prog, atom.RunOptions{Input: ckptInput}, vp)
	if outcome, err := v.RunControlled(context.Background()); err != nil || outcome != vm.OutcomeCompleted {
		t.Fatalf("outcome %v err %v", outcome, err)
	}
	ck, err := CheckpointOf(vp, v, "ckpt", "test")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return ck, buf.Bytes()
}

// reEnvelope rewrites a serialized checkpoint through a caller-supplied
// envelope mutation, for forging damage the atomic-write discipline
// would normally prevent.
func reEnvelope(t *testing.T, data []byte, mutate func(env *checkpointEnvelope)) []byte {
	t.Helper()
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	out, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCheckpointRepairTruncated(t *testing.T) {
	_, data := ckptWithVM(t)
	for _, cut := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 2} {
		ck, rep, err := ReadCheckpointPolicy(bytes.NewReader(data[:cut]), RepairDrop)
		if err == nil {
			t.Errorf("cut %d: truncated envelope yielded a checkpoint (%v, %+v)", cut, ck != nil, rep)
		}
	}
	// The intact bytes still load, and are resumable.
	ck, rep, err := ReadCheckpointPolicy(bytes.NewReader(data), RepairDrop)
	if err != nil || !rep.Resumable || rep.Damaged || ck.VM == nil {
		t.Fatalf("intact checkpoint: err %v report %+v", err, rep)
	}
}

func TestCheckpointRepairBadCRC(t *testing.T) {
	orig, data := ckptWithVM(t)
	bad := reEnvelope(t, data, func(env *checkpointEnvelope) { env.CRC32 ^= 0xdeadbeef })

	if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("strict loader accepted a CRC mismatch")
	}
	ck, rep, err := ReadCheckpointPolicy(bytes.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatalf("repair loader refused a salvageable checkpoint: %v", err)
	}
	if !rep.Damaged || rep.Resumable {
		t.Fatalf("report %+v, want damaged and not resumable", rep)
	}
	if ck.VM != nil {
		t.Error("unverified VM state survived the repair load")
	}
	if len(ck.Sites) != len(orig.Sites) {
		t.Errorf("salvaged %d of %d sites", len(ck.Sites), len(orig.Sites))
	}
}

func TestCheckpointRepairVersionSkew(t *testing.T) {
	orig, data := ckptWithVM(t)
	future := reEnvelope(t, data, func(env *checkpointEnvelope) { env.Version = checkpointVersion + 1 })

	if _, err := ReadCheckpoint(bytes.NewReader(future)); err == nil {
		t.Fatal("strict loader accepted a future envelope version")
	}
	ck, rep, err := ReadCheckpointPolicy(bytes.NewReader(future), RepairDrop)
	if err != nil {
		t.Fatalf("repair loader refused a future version: %v", err)
	}
	if !rep.Damaged || rep.Resumable || ck.VM != nil {
		t.Fatalf("report %+v vm %v, want damaged, not resumable, no VM", rep, ck.VM != nil)
	}
	if len(ck.Sites) != len(orig.Sites) {
		t.Errorf("salvaged %d of %d sites", len(ck.Sites), len(orig.Sites))
	}
}

func TestCheckpointRepairDropsInvalidSites(t *testing.T) {
	orig, data := ckptWithVM(t)
	if len(orig.Sites) < 2 {
		t.Fatalf("need ≥2 sites, have %d", len(orig.Sites))
	}
	// Forge a semantically impossible site behind a recomputed CRC —
	// the shape silent memory corruption before the write would take.
	mangled := reEnvelope(t, data, func(env *checkpointEnvelope) {
		var ck Checkpoint
		if err := json.Unmarshal(env.Payload, &ck); err != nil {
			t.Fatal(err)
		}
		ck.Sites[0].LVPHits = ck.Sites[0].Exec + 1
		payload, err := json.Marshal(&ck)
		if err != nil {
			t.Fatal(err)
		}
		env.Payload = payload
		env.CRC32 = crc32.ChecksumIEEE(payload)
	})

	if _, err := ReadCheckpoint(bytes.NewReader(mangled)); err == nil {
		t.Fatal("strict loader accepted an invalid site")
	}
	ck, rep, err := ReadCheckpointPolicy(bytes.NewReader(mangled), RepairDrop)
	if err != nil {
		t.Fatalf("repair loader refused: %v", err)
	}
	if rep.SitesDropped != 1 || len(ck.Sites) != len(orig.Sites)-1 {
		t.Fatalf("dropped %d sites, kept %d (want 1 dropped of %d)", rep.SitesDropped, len(ck.Sites), len(orig.Sites))
	}
	// The envelope itself verified, so the machine state stays usable.
	if !rep.Resumable || ck.VM == nil {
		t.Errorf("report %+v, want resumable with VM state", rep)
	}
	if len(rep.Problems) == 0 || !strings.Contains(rep.Problems[0], "dropped") {
		t.Errorf("problems: %v", rep.Problems)
	}
}

// TestResumeAfterMidWriteCorruption is the end-to-end satellite: a run
// dies, its sidecar checkpoint is damaged mid-write, and the resume
// path degrades to a fresh run via the repair loader instead of
// hard-failing — ending with exactly the profile an undamaged pipeline
// would have produced.
func TestResumeAfterMidWriteCorruption(t *testing.T) {
	prog := assembleCkpt(t)
	want := siteStatesOf(runUninterrupted(t, prog))

	for _, damage := range []struct {
		name   string
		mutate func(t *testing.T, data []byte) []byte
		loads  bool // repair loader returns a (non-resumable) checkpoint
	}{
		{"truncated", func(t *testing.T, data []byte) []byte { return data[:len(data)/3] }, false},
		{"bad-crc", func(t *testing.T, data []byte) []byte {
			return reEnvelope(t, data, func(env *checkpointEnvelope) { env.CRC32++ })
		}, true},
		{"version-skew", func(t *testing.T, data []byte) []byte {
			return reEnvelope(t, data, func(env *checkpointEnvelope) { env.Version = checkpointVersion + 7 })
		}, true},
	} {
		t.Run(damage.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
			if err != nil {
				t.Fatal(err)
			}
			ckpt := NewCheckpointer(vp, path, 1000, "ckpt", "test")
			killed := errors.New("injected kill")
			kill := atom.ToolFunc(func(ix *atom.Instrumenter) {
				ix.AddStep(func(v *vm.VM) error {
					if v.InstCount >= 7000 {
						return killed
					}
					return nil
				})
			})
			if _, outcome, err := atom.RunControlled(context.Background(), prog,
				atom.RunOptions{Input: ckptInput}, vp, ckpt, kill); !errors.Is(err, killed) || outcome != vm.OutcomeFaulted {
				t.Fatalf("outcome %v err %v", outcome, err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage.mutate(t, data), 0o644); err != nil {
				t.Fatal(err)
			}

			// The degradation path: strict load fails, the repair load
			// either fails too or comes back non-resumable, and the
			// caller starts over instead of dying.
			if _, err := LoadCheckpoint(path); err == nil {
				t.Fatal("strict loader accepted damaged checkpoint")
			}
			ck, rep, err := LoadCheckpointPolicy(path, RepairDrop)
			if damage.loads {
				if err != nil {
					t.Fatalf("repair load: %v", err)
				}
				if rep.Resumable || ck.VM != nil {
					t.Fatalf("damaged checkpoint reported resumable: %+v", rep)
				}
			} else if err == nil {
				t.Fatalf("repair load of %s succeeded: %+v", damage.name, rep)
			}

			fresh, err := NewValueProfiler(Options{TNV: DefaultTNVConfig()})
			if err != nil {
				t.Fatal(err)
			}
			if _, outcome, err := atom.RunControlled(context.Background(), prog,
				atom.RunOptions{Input: ckptInput}, fresh); err != nil || outcome != vm.OutcomeCompleted {
				t.Fatalf("fresh run: outcome %v err %v", outcome, err)
			}
			if got := siteStatesOf(fresh); !reflect.DeepEqual(got, want) {
				t.Error("fresh-start profile differs from uninterrupted run")
			}
		})
	}
}
