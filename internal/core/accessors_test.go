package core

import (
	"strings"
	"testing"
)

// This file pins the small read-side surface — accessors, formatters,
// and defaulting constructors — that the behavioral suites exercise
// only incidentally. They are part of the public contract (commands
// and the serve daemon print and branch on them), so the coverage gate
// should see them tested on purpose, not by luck.

func TestDefaultOptionsMatchPaperConfig(t *testing.T) {
	opts := DefaultOptions()
	if opts.TNV != DefaultTNVConfig() {
		t.Errorf("DefaultOptions TNV = %+v, want %+v", opts.TNV, DefaultTNVConfig())
	}
	if opts.Filter != nil || opts.Sampler != nil || opts.Convergent != nil || opts.TrackFull {
		t.Errorf("DefaultOptions sets non-default fields: %+v", opts)
	}
	if _, err := NewValueProfiler(opts); err != nil {
		t.Errorf("DefaultOptions rejected by NewValueProfiler: %v", err)
	}
}

func TestProfileStringSummary(t *testing.T) {
	s := NewSiteStats(4, "add", DefaultTNVConfig(), false)
	s.Observe(7)
	s.Observe(7)
	s.Observe(0)
	pr := &Profile{Sites: []*SiteStats{s}, K: DefaultTNVConfig().Size}
	out := pr.String()
	for _, want := range []string{"sites=1", "execs=3", "LVP=0.333", "duty=1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Profile.String() = %q, missing %q", out, want)
		}
	}
}

func TestSiteStatsZeroExecRates(t *testing.T) {
	s := NewSiteStats(0, "z", DefaultTNVConfig(), false)
	if s.LVP() != 0 || s.PctZero() != 0 {
		t.Errorf("zero-exec site reports LVP=%v PctZero=%v, want 0,0", s.LVP(), s.PctZero())
	}
	s.Observe(0)
	s.Observe(0)
	if s.LVP() != 0.5 || s.PctZero() != 1 {
		t.Errorf("after two zero observations LVP=%v PctZero=%v", s.LVP(), s.PctZero())
	}
}

func TestProfileRecordDutyCycle(t *testing.T) {
	empty := &ProfileRecord{}
	if d := empty.DutyCycle(); d != 1 {
		t.Errorf("empty record duty cycle %v, want 1", d)
	}
	r := &ProfileRecord{
		Skipped: 30,
		Sites:   []SiteRecord{{Exec: 50}, {Exec: 20}},
	}
	if d := r.DutyCycle(); d != 0.7 {
		t.Errorf("duty cycle %v, want 0.7", d)
	}
}

func TestLoadReportString(t *testing.T) {
	lr := &LoadReport{SitesLoaded: 5, SitesDropped: 1, SitesClamped: 2}
	if got := lr.String(); got != "loaded 5 sites (1 dropped, 2 clamped)" {
		t.Errorf("String() = %q", got)
	}
	lr.Truncated = true
	if got := lr.String(); !strings.HasSuffix(got, ", input truncated") {
		t.Errorf("truncated String() = %q", got)
	}
	if lr.Clean() {
		t.Error("damaged report claims Clean")
	}
}

func TestTNVTableConfig(t *testing.T) {
	cfg := DefaultTNVConfig()
	tab := NewTNV(cfg)
	if tab.Config() != cfg {
		t.Errorf("Config() = %+v, want %+v", tab.Config(), cfg)
	}
}

func TestCheckpointInstCount(t *testing.T) {
	ck := &Checkpoint{}
	if n := ck.InstCount(); n != 0 {
		t.Errorf("no-VM checkpoint InstCount %d, want 0", n)
	}
	ck.VM = &VMState{InstCount: 12345}
	if n := ck.InstCount(); n != 12345 {
		t.Errorf("InstCount %d, want 12345", n)
	}
}

func TestCheckpointerDefaultsAndErr(t *testing.T) {
	vp, err := NewValueProfiler(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCheckpointer(vp, "x.ckpt", 0, "prog", "in")
	if c.Every != DefaultCheckpointEvery {
		t.Errorf("zero interval selected %d, want DefaultCheckpointEvery", c.Every)
	}
	if c.Written() != 0 || c.Err() != nil {
		t.Errorf("fresh checkpointer Written=%d Err=%v", c.Written(), c.Err())
	}
}

// TestConvergentSamplerInterfaces drives the factory-built sampler
// through both its per-execution and batch-replay interfaces and
// checks they describe the same phase structure.
func TestConvergentSamplerInterfaces(t *testing.T) {
	cfg := ConvergentConfig{BurstLen: 3, InitialSkip: 2, MaxSkip: 8, Epsilon: 0.5}

	// Per-execution over a perfectly invariant site: the first burst's
	// checkpoint has nothing to compare against, so the sampler profiles
	// a second burst; its checkpoint converges and the skip begins.
	s := NewConvergentFactory(cfg)()
	site := NewSiteStats(0, "s", DefaultTNVConfig(), false)
	profiled := uint64(0)
	for i := uint64(0); i < 2*cfg.BurstLen; i++ {
		if !s.ShouldProfile(site) {
			t.Fatalf("execution %d not profiled; expected two full bursts before convergence", i)
		}
		site.Observe(42)
		profiled++
	}
	if s.ShouldProfile(site) {
		t.Fatal("post-convergence execution profiled; skip phase expected")
	}

	// Batch replay: a fresh sampler describes the same phase structure
	// as take-runs adding up to two bursts, with EndPhase at each
	// boundary, then a skip run.
	b, ok := NewConvergentFactory(cfg)().(BatchSampler)
	if !ok {
		t.Fatal("convergent sampler does not implement BatchSampler")
	}
	site2 := NewSiteStats(0, "s2", DefaultTNVConfig(), false)
	var consumed uint64
	for consumed < 2*cfg.BurstLen {
		take, n, boundary := b.NextRun(2)
		if !take {
			t.Fatalf("skip run after %d take executions, want %d", consumed, 2*cfg.BurstLen)
		}
		if n == 0 || n > 2 {
			t.Fatalf("NextRun consumed %d, want 1..2", n)
		}
		for i := uint64(0); i < n; i++ {
			site2.Observe(42)
		}
		consumed += n
		if boundary {
			b.EndPhase(site2)
		}
	}
	if consumed != 2*cfg.BurstLen {
		t.Fatalf("batch bursts consumed %d executions, want %d", consumed, 2*cfg.BurstLen)
	}
	// After the converged boundary the skip phase begins.
	if take, _, _ := b.NextRun(1); take {
		t.Fatal("post-convergence batch run still profiling")
	}
}

func TestConvergentFactoryRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewConvergentFactory accepted an invalid config")
		}
	}()
	NewConvergentFactory(ConvergentConfig{})
}

// TestResetForReusesProfiler pins the arena reuse entry point: a reset
// profiler accepts new options, drops accumulated sites, and rejects
// invalid options without corrupting itself.
func TestResetForReusesProfiler(t *testing.T) {
	vp, err := NewValueProfiler(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := vp.ResetFor(Options{Convergent: &ConvergentConfig{}}); err == nil {
		t.Fatal("ResetFor accepted an invalid convergent config")
	}
	cc := DefaultConvergentConfig()
	if err := vp.ResetFor(Options{Convergent: &cc}); err != nil {
		t.Fatal(err)
	}
	pr := vp.Profile()
	if len(pr.Sites) != 0 {
		t.Fatalf("reset profiler still holds %d sites", len(pr.Sites))
	}
	if pr.K != DefaultTNVConfig().Size {
		t.Fatalf("reset profiler K = %d", pr.K)
	}
}
