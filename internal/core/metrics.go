package core

import "math"

// SiteStats accumulates the per-site statistics of §III.C of the paper
// for one profiled entity (an instruction, a memory location, or a
// procedure parameter): TNV table, optional full profile, last-value
// predictability, and zero counting.
type SiteStats struct {
	PC   int // instruction index (or -1 for non-instruction sites)
	Name string

	Exec uint64 // profiled executions
	// Skipped counts executions a sampler declined to profile at this
	// site. It lives on the site (not the profiler) so that analysis
	// hooks touch only site-local state — profilers on pooled workers
	// then share nothing and run clean under the race detector.
	Skipped uint64
	LVPHits uint64 // value equalled the previous value
	Zeros   uint64

	TNV  *TNVTable
	Full *FullProfile // nil unless ground-truth tracking is on

	last    int64
	hasLast bool
}

// NewSiteStats creates stats for one site. trackFull additionally keeps
// the exact profile (expensive; used as ground truth).
func NewSiteStats(pc int, name string, cfg TNVConfig, trackFull bool) *SiteStats {
	s := &SiteStats{PC: pc, Name: name, TNV: NewTNV(cfg)}
	if trackFull {
		s.Full = NewFullProfile()
	}
	return s
}

// Observe records one executed value of the site.
func (s *SiteStats) Observe(v int64) {
	s.Exec++
	if s.hasLast && v == s.last {
		s.LVPHits++
	}
	s.last = v
	s.hasLast = true
	if v == 0 {
		s.Zeros++
	}
	s.TNV.Add(v)
	if s.Full != nil {
		s.Full.Add(v)
	}
}

// ObserveBatch records a batch of consecutively executed values, in
// execution order — the flush target of a vm.ValueBuffer. It is
// equivalent to calling Observe per value (the LVP comparison chains
// across batch boundaries through the saved last-value state) but
// runs as a single-pass, allocation-free scan: scalar counters live in
// locals across the batch, and a run of the TNV head value — the
// common case at invariant and semi-invariant sites — collapses into
// one table update covering the whole run (the LVP chain, zero count,
// and clear clock all advance by closed form). The head-run fast path
// re-checks the head after every general update, so values that bubble
// to the top mid-batch start taking it immediately.
func (s *SiteStats) ObserveBatch(vals []int64) {
	if len(vals) == 0 {
		return
	}
	if s.Full != nil {
		// Ground-truth mode keeps the exact per-value path; it exists
		// to measure the approximations, not to be fast.
		for _, v := range vals {
			s.Observe(v)
		}
		return
	}
	t := s.TNV
	// A mid-run periodic clear with Steady == 0 evicts the head entry
	// itself, which would break the head-run closed form; such tables
	// (test configurations) take the per-value path.
	headRuns := t.cfg.ClearInterval == 0 || t.cfg.Steady > 0
	last, hasLast := s.last, s.hasLast
	var lvp, zeros uint64
	for i := 0; i < len(vals); {
		v := vals[i]
		if e := t.entries; headRuns && len(e) > 0 && e[0].Value == v {
			j := i + 1
			for j < len(vals) && vals[j] == v {
				j++
			}
			run := uint64(j - i)
			// Within the run every repetition after the first is a
			// last-value hit; the first hits iff it extends the chain.
			lvp += run - 1
			if hasLast && v == last {
				lvp++
			}
			if v == 0 {
				zeros += run
			}
			last, hasLast = v, true
			t.addHeadRun(run)
			i = j
			continue
		}
		if hasLast && v == last {
			lvp++
		}
		last, hasLast = v, true
		if v == 0 {
			zeros++
		}
		t.Add(v)
		i++
	}
	s.Exec += uint64(len(vals))
	s.LVPHits += lvp
	s.Zeros += zeros
	s.last, s.hasLast = last, hasLast
}

// LVP returns the last-value predictability: the fraction of profiled
// executions producing the same value as the previous execution.
func (s *SiteStats) LVP() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.LVPHits) / float64(s.Exec)
}

// PctZero returns the fraction of executions producing zero.
func (s *SiteStats) PctZero() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.Zeros) / float64(s.Exec)
}

// InvTop returns the TNV-estimated invariance over the top k values.
func (s *SiteStats) InvTop(k int) float64 { return s.TNV.InvTop(k) }

// InvAll returns the exact invariance over the top k values, or the
// TNV estimate when no full profile was kept.
func (s *SiteStats) InvAll(k int) float64 {
	if s.Full != nil {
		return s.Full.InvAll(k)
	}
	return s.TNV.InvTop(k)
}

// Diff returns |LVP − Inv-Top(1)| for the site: the paper's Diff(L/I)
// metric, measuring how well cheap last-value hit counting stands in
// for invariance.
func (s *SiteStats) Diff() float64 {
	return math.Abs(s.LVP() - s.InvTop(1))
}

// Class is the paper's three-way classification of a site.
type Class int

const (
	Variant Class = iota
	SemiInvariant
	Invariant
)

func (c Class) String() string {
	switch c {
	case Invariant:
		return "invariant"
	case SemiInvariant:
		return "semi-invariant"
	}
	return "variant"
}

// ClassifyThresholds are the Inv-Top(1) cutoffs for classification.
type ClassifyThresholds struct {
	Invariant     float64 // Inv-Top(1) at or above → invariant
	SemiInvariant float64 // Inv-Top(1) at or above → semi-invariant
}

// DefaultThresholds classifies ≥95% top-value coverage as invariant and
// ≥50% as semi-invariant, following the paper's working definition of a
// semi-invariant variable ("holds one value most of the time").
func DefaultThresholds() ClassifyThresholds {
	return ClassifyThresholds{Invariant: 0.95, SemiInvariant: 0.50}
}

// Classify buckets the site by its top-value invariance.
func (s *SiteStats) Classify(th ClassifyThresholds) Class {
	inv := s.InvTop(1)
	switch {
	case inv >= th.Invariant:
		return Invariant
	case inv >= th.SemiInvariant:
		return SemiInvariant
	}
	return Variant
}

// WeightedMetrics aggregates site metrics weighted by execution count,
// the way the paper reports per-benchmark numbers.
type WeightedMetrics struct {
	Sites   int
	Execs   uint64
	LVP     float64
	InvTop1 float64
	InvTopN float64
	InvAll1 float64
	InvAllN float64
	PctZero float64
	Diff    float64 // weighted mean |LVP − InvTop1|
}

// Aggregate computes execution-weighted means across sites; k is the
// table width used for the Top-N metrics.
func Aggregate(sites []*SiteStats, k int) WeightedMetrics {
	var m WeightedMetrics
	var w float64
	for _, s := range sites {
		if s.Exec == 0 {
			continue
		}
		m.Sites++
		m.Execs += s.Exec
		f := float64(s.Exec)
		w += f
		m.LVP += f * s.LVP()
		m.InvTop1 += f * s.InvTop(1)
		m.InvTopN += f * s.InvTop(k)
		m.InvAll1 += f * s.InvAll(1)
		m.InvAllN += f * s.InvAll(k)
		m.PctZero += f * s.PctZero()
		m.Diff += f * s.Diff()
	}
	if w > 0 {
		m.LVP /= w
		m.InvTop1 /= w
		m.InvTopN /= w
		m.InvAll1 /= w
		m.InvAllN /= w
		m.PctZero /= w
		m.Diff /= w
	}
	return m
}
