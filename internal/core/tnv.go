// Package core implements the paper's contribution: value profiling
// with Top-N-Value (TNV) tables, the invariance/LVP/zero metrics, the
// full-profile ground truth, and the convergent (intelligent) sampling
// profiler that trades profiling overhead for accuracy.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// TNVConfig parameterizes a Top-N-Value table.
//
// The table keeps Size (value, count) entries ordered by count. The top
// Steady entries are never evicted; the remaining "clear part" entries
// are (a) the LFU victims when a new value misses a full table, and (b)
// flushed wholesale every ClearInterval updates so that newly hot
// values can climb into the steady part. This is the paper's LFU +
// periodic-clearing replacement policy.
type TNVConfig struct {
	Size          int    // total entries (paper default 10)
	Steady        int    // protected top entries (paper default Size/2)
	ClearInterval uint64 // updates between clears; 0 disables clearing
}

// DefaultTNVConfig is the configuration the paper's experiments used.
func DefaultTNVConfig() TNVConfig {
	return TNVConfig{Size: 10, Steady: 5, ClearInterval: 2000}
}

func (c TNVConfig) validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("core: TNV size %d must be positive", c.Size)
	}
	if c.Steady < 0 || c.Steady > c.Size {
		return fmt.Errorf("core: TNV steady %d out of range [0,%d]", c.Steady, c.Size)
	}
	return nil
}

// TNVEntry is one (value, count) pair.
type TNVEntry struct {
	Value int64
	Count uint64
}

// TNVTable is a Top-N-Value table. The zero value is unusable; create
// with NewTNV.
type TNVTable struct {
	cfg        TNVConfig
	entries    []TNVEntry // sorted by Count descending
	updates    uint64     // values observed
	dropped    uint64     // observed values discarded by a full, fully-steady table
	sinceClear uint64
	clears     uint64
}

// NewTNV creates a table; it panics on an invalid configuration
// (configurations are programmer-supplied constants).
func NewTNV(cfg TNVConfig) *TNVTable {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &TNVTable{cfg: cfg, entries: make([]TNVEntry, 0, cfg.Size)}
}

// Config returns the table's configuration.
func (t *TNVTable) Config() TNVConfig { return t.cfg }

// Updates returns how many values have been added.
func (t *TNVTable) Updates() uint64 { return t.updates }

// Clears returns how many periodic clears have occurred.
func (t *TNVTable) Clears() uint64 { return t.clears }

// Dropped returns how many observed values were discarded without
// touching any entry: a miss on a full table whose entries are all
// steady (Steady == Size) has no eviction candidate, so the value is
// counted in Updates but held nowhere. The counter makes that loss
// visible to accuracy accounting — InvTop already divides by Updates,
// so dropped values depress the estimate exactly like evicted ones.
func (t *TNVTable) Dropped() uint64 { return t.dropped }

// Len returns the number of live entries.
func (t *TNVTable) Len() int { return len(t.entries) }

// Add records one observed value.
func (t *TNVTable) Add(v int64) {
	t.updates++
	e := t.entries

	// Top-1 hit first: invariant and semi-invariant sites — the common
	// case by definition — hit the head entry, and a head increment can
	// never need re-ordering, so this path does no scan and no bubble.
	if len(e) > 0 && e[0].Value == v {
		e[0].Count++
		t.maybeClear()
		return
	}

	// Hit below the head: increment and bubble toward the front to
	// keep the order.
	for i := 1; i < len(e); i++ {
		if e[i].Value == v {
			e[i].Count++
			for i > 0 && e[i-1].Count < e[i].Count {
				e[i-1], e[i] = e[i], e[i-1]
				i--
			}
			t.maybeClear()
			return
		}
	}

	// Miss: append if there is room, else replace the LFU victim in
	// the clear part (the last entry). If the whole table is steady
	// (Steady == Size) a full table has no eviction candidate: the
	// value is counted as dropped and — having touched no entry — does
	// not advance the clear clock.
	if len(t.entries) < t.cfg.Size {
		t.entries = append(t.entries, TNVEntry{Value: v, Count: 1})
	} else if t.cfg.Steady < t.cfg.Size {
		t.entries[len(t.entries)-1] = TNVEntry{Value: v, Count: 1}
	} else {
		t.dropped++
		return
	}
	t.maybeClear()
}

// addHeadRun records run consecutive observations of the current head
// value in closed form, equivalent to run sequential Add calls hitting
// the head. A head hit only ever increments the head count (no
// reordering), and the sole mid-run table event is the periodic clear,
// which truncates the tail but cannot dethrone the head while
// Steady ≥ 1 — callers guarantee that (see SiteStats.ObserveBatch).
// Multiple clear-interval crossings inside one run count at most one
// clear, exactly like the per-update path: the first crossing
// truncates to Steady entries and later crossings find nothing above
// Steady to flush.
func (t *TNVTable) addHeadRun(run uint64) {
	t.updates += run
	t.entries[0].Count += run
	if t.cfg.ClearInterval == 0 {
		return
	}
	total := t.sinceClear + run
	t.sinceClear = total % t.cfg.ClearInterval
	if total >= t.cfg.ClearInterval && len(t.entries) > t.cfg.Steady {
		t.entries = t.entries[:t.cfg.Steady]
		t.clears++
	}
}

// maybeClear advances the periodic-clear clock by one update and, when
// the interval elapses, flushes the clear part. Callers invoke it only
// for updates that touched an entry (hit, insert, or evict-replace):
// a dropped update changed nothing, so letting it tick the clock would
// misstate the eviction pressure the clear cadence is meant to track.
func (t *TNVTable) maybeClear() {
	if t.cfg.ClearInterval == 0 {
		return
	}
	t.sinceClear++
	if t.sinceClear < t.cfg.ClearInterval {
		return
	}
	t.sinceClear = 0
	// Only a clear that actually flushes entries counts: a table still
	// within its steady part has nothing to evict, and counting the
	// no-op would make Clears() overreport clearing activity.
	if len(t.entries) > t.cfg.Steady {
		t.entries = t.entries[:t.cfg.Steady]
		t.clears++
	}
}

// Top returns the k most frequent entries (fewer if the table holds
// fewer, none for k ≤ 0), most frequent first.
func (t *TNVTable) Top(k int) []TNVEntry {
	if k < 0 {
		k = 0
	}
	if k > len(t.entries) {
		k = len(t.entries)
	}
	out := make([]TNVEntry, k)
	copy(out, t.entries[:k])
	return out
}

// TopValue returns the most frequent value and its count; ok is false
// for an empty table.
func (t *TNVTable) TopValue() (v int64, count uint64, ok bool) {
	if len(t.entries) == 0 {
		return 0, 0, false
	}
	return t.entries[0].Value, t.entries[0].Count, true
}

// InvTop returns the estimated invariance of the site from the table:
// the counts of the top-k surviving entries divided by all observed
// values. Counts lost to eviction and clearing make this an
// underestimate of true invariance — exactly the approximation error
// experiment E4 quantifies.
func (t *TNVTable) InvTop(k int) float64 {
	if t.updates == 0 {
		return 0
	}
	var sum uint64
	for i, e := range t.entries {
		if i >= k {
			break
		}
		sum += e.Count
	}
	return float64(sum) / float64(t.updates)
}

// String renders the table for reports: "v:c v:c ... (updates=n)".
func (t *TNVTable) String() string {
	var b strings.Builder
	for i, e := range t.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", e.Value, e.Count)
	}
	fmt.Fprintf(&b, " (updates=%d)", t.updates)
	return b.String()
}

// FullProfile is the exact value profile: every distinct value with its
// exact count. It is the paper's "full profiling" ground truth against
// which TNV accuracy is measured, and the source of the Inv-All metric.
type FullProfile struct {
	counts map[int64]uint64
	total  uint64
}

// NewFullProfile creates an empty exact profile.
func NewFullProfile() *FullProfile {
	return &FullProfile{counts: make(map[int64]uint64)}
}

// Add records one observed value.
func (f *FullProfile) Add(v int64) {
	f.counts[v]++
	f.total++
}

// Total returns the number of observed values.
func (f *FullProfile) Total() uint64 { return f.total }

// Distinct returns the number of distinct values seen.
func (f *FullProfile) Distinct() int { return len(f.counts) }

// Count returns the exact count of v.
func (f *FullProfile) Count(v int64) uint64 { return f.counts[v] }

// Top returns the k most frequent (value, count) pairs (none for
// k ≤ 0), ties broken by value for determinism.
func (f *FullProfile) Top(k int) []TNVEntry {
	if k <= 0 {
		return nil
	}
	all := make([]TNVEntry, 0, len(f.counts))
	for v, c := range f.counts {
		all = append(all, TNVEntry{Value: v, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// InvAll returns the exact invariance: the fraction of executions
// covered by the k most frequent values.
func (f *FullProfile) InvAll(k int) float64 {
	if f.total == 0 {
		return 0
	}
	var sum uint64
	for _, e := range f.Top(k) {
		sum += e.Count
	}
	return float64(sum) / float64(f.total)
}
