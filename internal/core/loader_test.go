package core

import (
	"bytes"
	"strings"
	"testing"
)

// mkRecord builds a well-formed two-site record as JSON text.
const goodRecord = `{
 "program": "loop", "input": "test", "k": 10,
 "sites": [
  {"pc": 3, "name": "main+3", "exec": 100, "lvpHits": 90, "zeros": 0,
   "top": [{"Value": 42, "Count": 90}, {"Value": 7, "Count": 10}]},
  {"pc": 5, "name": "main+5", "exec": 50, "lvpHits": 10, "zeros": 50,
   "top": [{"Value": 0, "Count": 50}]}
 ]
}`

func TestLoaderAcceptsCleanRecord(t *testing.T) {
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(goodRecord), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("clean record reported dirty: %+v", rep)
	}
	if len(rec.Sites) != 2 || rec.Sites[0].PC != 3 || rec.K != 10 {
		t.Fatalf("rec: %+v", rec)
	}
}

func TestLoaderRejectsDuplicatePCs(t *testing.T) {
	dup := strings.Replace(goodRecord, `"pc": 5`, `"pc": 3`, 1)
	if _, err := ReadProfileRecord(strings.NewReader(dup)); err == nil || !strings.Contains(err.Error(), "duplicate pc") {
		t.Errorf("strict: err = %v, want duplicate pc", err)
	}
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(dup), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sites) != 1 || rep.SitesDropped != 1 {
		t.Errorf("repair kept %d sites, dropped %d", len(rec.Sites), rep.SitesDropped)
	}
}

func TestLoaderRejectsOverflowingTopCounts(t *testing.T) {
	// Counts sum to 150 > exec 100, which would make InvTop(2) = 1.5.
	bad := strings.Replace(goodRecord, `{"Value": 7, "Count": 10}`, `{"Value": 7, "Count": 60}`, 1)
	if _, err := ReadProfileRecord(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "exceed executions") {
		t.Errorf("strict: err = %v, want count overflow", err)
	}
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SitesClamped == 0 {
		t.Error("no clamp reported")
	}
	for _, s := range rec.Sites {
		for k := 1; k <= 10; k++ {
			if inv := s.InvTop(k); inv > 1.0 {
				t.Fatalf("site %d InvTop(%d) = %v > 1", s.PC, k, inv)
			}
		}
	}
}

func TestLoaderClampsLVPAndZeros(t *testing.T) {
	bad := strings.Replace(goodRecord, `"lvpHits": 90`, `"lvpHits": 900`, 1)
	bad = strings.Replace(bad, `"zeros": 50`, `"zeros": 500`, 1)
	if _, err := ReadProfileRecord(strings.NewReader(bad)); err == nil {
		t.Error("strict accepted LVP overflow")
	}
	rec, _, err := ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if lvp := rec.Sites[0].LVP(); lvp > 1.0 {
		t.Errorf("LVP %v > 1 after repair", lvp)
	}
	if rec.Sites[1].Zeros != rec.Sites[1].Exec {
		t.Errorf("zeros %d not clamped to exec %d", rec.Sites[1].Zeros, rec.Sites[1].Exec)
	}
}

func TestLoaderSalvagesTruncatedJSON(t *testing.T) {
	// Cut the file in the middle of the second site.
	cut := goodRecord[:strings.Index(goodRecord, `"pc": 5`)+20]
	if _, err := ReadProfileRecord(strings.NewReader(cut)); err == nil {
		t.Error("strict accepted truncated record")
	}
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(cut), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("truncation not reported")
	}
	if len(rec.Sites) != 1 || rec.Sites[0].PC != 3 {
		t.Errorf("salvaged sites: %+v", rec.Sites)
	}
}

func TestLoaderDropsNegativeAndZeroExecSites(t *testing.T) {
	bad := strings.Replace(goodRecord, `"pc": 5`, `"pc": -5`, 1)
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sites) != 1 || rep.SitesDropped != 1 {
		t.Errorf("negative pc kept: %+v", rec.Sites)
	}

	bad = strings.Replace(goodRecord, `"exec": 50`, `"exec": 0`, 1)
	rec, rep, err = ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sites) != 1 || rep.SitesDropped != 1 {
		t.Errorf("zero-exec site kept: %+v", rec.Sites)
	}
}

func TestLoaderDropsUndecodableSite(t *testing.T) {
	// A negative count cannot decode into uint64; only that site dies.
	bad := strings.Replace(goodRecord, `"Count": 50`, `"Count": -50`, 1)
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sites) != 1 || rec.Sites[0].PC != 3 || rep.SitesDropped != 1 {
		t.Errorf("sites: %+v, report %+v", rec.Sites, rep)
	}
	if _, err := ReadProfileRecord(strings.NewReader(bad)); err == nil {
		t.Error("strict accepted negative count")
	}
}

func TestLoaderRejectsAbsurdTableWidth(t *testing.T) {
	for _, k := range []string{`"k": 0`, `"k": -3`, `"k": 9999999`} {
		bad := strings.Replace(goodRecord, `"k": 10`, k, 1)
		if _, _, err := ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop); err == nil {
			t.Errorf("accepted %s", k)
		}
	}
}

func TestLoaderTruncatesWideSites(t *testing.T) {
	bad := strings.Replace(goodRecord, `"k": 10`, `"k": 1`, 1)
	if _, err := ReadProfileRecord(strings.NewReader(bad)); err == nil {
		t.Error("strict accepted sites wider than k")
	}
	rec, rep, err := ReadProfileRecordPolicy(strings.NewReader(bad), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SitesClamped == 0 {
		t.Error("no clamp reported")
	}
	for _, s := range rec.Sites {
		if len(s.Top) > 1 {
			t.Errorf("site %d keeps %d entries, k=1", s.PC, len(s.Top))
		}
	}
}

func TestLoaderSkipsUnknownFields(t *testing.T) {
	extended := strings.Replace(goodRecord, `"k": 10,`, `"k": 10, "futureField": {"a": [1,2,3]},`, 1)
	rec, err := ReadProfileRecord(strings.NewReader(extended))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sites) != 2 {
		t.Errorf("sites: %+v", rec.Sites)
	}
}

func TestLoaderNormalizesEntryOrder(t *testing.T) {
	// Entries deliberately out of count order: loader re-sorts.
	swapped := strings.Replace(goodRecord,
		`[{"Value": 42, "Count": 90}, {"Value": 7, "Count": 10}]`,
		`[{"Value": 7, "Count": 10}, {"Value": 42, "Count": 90}]`, 1)
	rec, err := ReadProfileRecord(strings.NewReader(swapped))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Sites[0].Top[0].Value != 42 {
		t.Errorf("top entry %+v, want count-descending order", rec.Sites[0].Top)
	}
}

func TestLoaderPartialOutcomeRoundTrip(t *testing.T) {
	rec := &ProfileRecord{Program: "p", Input: "i", K: 10, Outcome: "cancelled",
		Sites: []SiteRecord{{PC: 1, Exec: 5, Top: []TNVEntry{{Value: 9, Count: 5}}}}}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Outcome != "cancelled" {
		t.Errorf("outcome %q", back.Outcome)
	}
}
