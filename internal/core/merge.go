package core

import (
	"fmt"
	"sort"
)

// This file implements the merge algebra that makes profiles from
// independent shards (parallel workers, split inputs, resumed runs)
// combinable into one profile: TNV tables, full profiles, sites, and
// whole profiles merge by count-weighted union. Merging is commutative
// and associative on all exact counters; see docs/parallel.md for
// where the merged TNV table approximates the single-run table.

// Clone returns a deep copy of the table.
func (t *TNVTable) Clone() *TNVTable {
	return &TNVTable{
		cfg:        t.cfg,
		entries:    append([]TNVEntry(nil), t.entries...),
		updates:    t.updates,
		dropped:    t.dropped,
		sinceClear: t.sinceClear,
		clears:     t.clears,
	}
}

// Merge folds o into t: the count-weighted union of both tables'
// surviving entries, re-sorted by count (ties broken by value for
// determinism) and truncated to the configured size, so the steady
// part of the merged table is again its highest-count entries. The two
// tables must share one configuration — merging tables collected under
// different replacement policies would be statistically meaningless.
//
// The merged table is an approximation of the table one concatenated
// run would have built: counts already lost to eviction or clearing in
// either shard stay lost, and values each shard retained are summed
// exactly. Merged counts therefore never exceed the concatenated run's
// full counts, and InvTop stays an underestimate of true invariance.
// The update, drop, and clear counters add; the merge itself never
// triggers a clear (the combined sinceClear phase is folded modulo the
// interval).
func (t *TNVTable) Merge(o *TNVTable) error {
	if t.cfg != o.cfg {
		return fmt.Errorf("core: merging TNV tables with different configs %+v and %+v", t.cfg, o.cfg)
	}
	counts := make(map[int64]uint64, len(t.entries)+len(o.entries))
	for _, e := range t.entries {
		counts[e.Value] += e.Count
	}
	for _, e := range o.entries {
		counts[e.Value] += e.Count
	}
	merged := make([]TNVEntry, 0, len(counts))
	for v, c := range counts {
		merged = append(merged, TNVEntry{Value: v, Count: c})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Value < merged[j].Value
	})
	if len(merged) > t.cfg.Size {
		merged = merged[:t.cfg.Size]
	}
	t.entries = merged
	t.updates += o.updates
	t.dropped += o.dropped
	t.clears += o.clears
	t.sinceClear += o.sinceClear
	if t.cfg.ClearInterval > 0 {
		t.sinceClear %= t.cfg.ClearInterval
	}
	return nil
}

// Clone returns a deep copy of the exact profile.
func (f *FullProfile) Clone() *FullProfile {
	out := &FullProfile{counts: make(map[int64]uint64, len(f.counts)), total: f.total}
	for v, c := range f.counts {
		out.counts[v] = c
	}
	return out
}

// Merge folds o into f: the multiset union of the two exact profiles.
// Unlike the TNV merge this is lossless — the merged full profile is
// exactly the full profile of the concatenated value stream.
func (f *FullProfile) Merge(o *FullProfile) {
	for v, c := range o.counts {
		f.counts[v] += c
	}
	f.total += o.total
}

// Clone returns a deep copy of the site's statistics.
func (s *SiteStats) Clone() *SiteStats {
	out := *s
	out.TNV = s.TNV.Clone()
	if s.Full != nil {
		out.Full = s.Full.Clone()
	}
	return &out
}

// Merge folds o into s, treating o as a later shard of the same site:
// Exec, LVPHits, Zeros and Skipped counters sum, the TNV tables merge
// (count-weighted union), and the full profiles union exactly when
// both shards kept one (a partial ground truth would be misleading, so
// it is dropped if either side lacks it). The last-value state adopts
// o's, and the LVP hit a concatenated run might have scored at the
// splice boundary (o's first value equalling s's last) is unknowable
// from the shards — merged LVPHits can undercount the concatenated run
// by at most one per merge.
func (s *SiteStats) Merge(o *SiteStats) error {
	if s.PC != o.PC {
		return fmt.Errorf("core: merging stats of different sites pc %d and %d", s.PC, o.PC)
	}
	if s.Name != o.Name {
		return fmt.Errorf("core: merging site pc %d with conflicting names %q and %q", s.PC, s.Name, o.Name)
	}
	if err := s.TNV.Merge(o.TNV); err != nil {
		return fmt.Errorf("core: site pc %d: %w", s.PC, err)
	}
	s.Exec += o.Exec
	s.LVPHits += o.LVPHits
	s.Zeros += o.Zeros
	s.Skipped += o.Skipped
	if s.Full != nil && o.Full != nil {
		s.Full.Merge(o.Full)
	} else {
		s.Full = nil
	}
	if o.hasLast {
		s.last, s.hasLast = o.last, true
	}
	return nil
}

// Clone returns a deep copy of the profile.
func (pr *Profile) Clone() *Profile {
	out := &Profile{K: pr.K, Skipped: pr.Skipped, Pruned: pr.Pruned}
	out.Sites = make([]*SiteStats, len(pr.Sites))
	for i, s := range pr.Sites {
		out.Sites[i] = s.Clone()
	}
	return out
}

// Merge combines two profiles of the same program into a new one,
// keyed by site PC: sites present in both merge per SiteStats.Merge,
// sites present in one carry over, and the result stays sorted by PC.
// Neither input is modified. The profiles must be config-compatible —
// same table width and, per shared site, same TNV configuration and
// site name; mismatches mean the shards were not collected from the
// same program under the same policy and the merge is rejected.
//
// Skipped totals add. Pruned keeps the larger count: pruning decisions
// are per-program properties, not per-run events, so summing them
// would double-count the same pruned pcs.
func (pr *Profile) Merge(o *Profile) (*Profile, error) {
	if pr.K != o.K {
		return nil, fmt.Errorf("core: merging profiles with different table widths %d and %d", pr.K, o.K)
	}
	out := &Profile{K: pr.K, Skipped: pr.Skipped + o.Skipped, Pruned: max(pr.Pruned, o.Pruned)}
	oByPC := make(map[int]*SiteStats, len(o.Sites))
	for _, s := range o.Sites {
		oByPC[s.PC] = s
	}
	for _, s := range pr.Sites {
		m := s.Clone()
		if os, ok := oByPC[s.PC]; ok {
			delete(oByPC, s.PC)
			if err := m.Merge(os); err != nil {
				return nil, err
			}
		}
		out.Sites = append(out.Sites, m)
	}
	for _, s := range o.Sites {
		if _, ok := oByPC[s.PC]; ok {
			out.Sites = append(out.Sites, s.Clone())
		}
	}
	sort.Slice(out.Sites, func(i, j int) bool { return out.Sites[i].PC < out.Sites[j].PC })
	return out, nil
}
