package core

import (
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/isa"
)

func TestAdaptiveBudgetAllocations(t *testing.T) {
	plan := &AdaptivePlan{
		Budget: func(pc int, in isa.Inst) SiteBudget {
			switch pc {
			case 1:
				return BudgetSkip
			case 2:
				return BudgetSampled
			}
			return BudgetFull
		},
		// A tiny config so the 100-iteration loop actually reaches the
		// skip phase.
		Sampled: ConvergentConfig{BurstLen: 5, InitialSkip: 10, MaxSkip: 40, Epsilon: 0.1},
	}
	pr := profileLoop(t, Options{TNV: DefaultTNVConfig(), AdaptiveBudget: plan})

	if pr.Site(1) != nil {
		t.Error("skipped site still allocated")
	}
	sampled := pr.Site(2)
	if sampled == nil {
		t.Fatal("sampled site missing")
	}
	// Convergent sampling on a varying site must observe fewer than all
	// executions (the duty cycle backs off) and account the rest.
	if sampled.Exec+sampled.Skipped != 100 {
		t.Errorf("sampled site exec=%d skipped=%d, want 100 total", sampled.Exec, sampled.Skipped)
	}
	if sampled.Skipped == 0 {
		t.Error("sampled varying site never skipped")
	}
	full := pr.Site(3)
	if full == nil || full.Exec != 100 || full.Skipped != 0 {
		t.Errorf("full site = %+v, want 100 unskipped executions", full)
	}
}

func TestAdaptiveBudgetCountsPruned(t *testing.T) {
	plan := &AdaptivePlan{
		Budget: func(pc int, in isa.Inst) SiteBudget {
			if pc <= 1 {
				return BudgetSkip
			}
			return BudgetFull
		},
	}
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), AdaptiveBudget: plan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	if vp.Pruned != 2 {
		t.Errorf("Pruned = %d, want 2", vp.Pruned)
	}
	// Re-instrumenting the same profiler must not double-count.
	if _, err := atom.Run(prog, nil, false, vp); err != nil {
		t.Fatal(err)
	}
	if vp.Pruned != 2 {
		t.Errorf("Pruned after rerun = %d, want 2", vp.Pruned)
	}
}

func TestAdaptiveBudgetExclusiveWithSamplers(t *testing.T) {
	plan := &AdaptivePlan{}
	cc := DefaultConvergentConfig()
	if _, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), AdaptiveBudget: plan, Convergent: &cc}); err == nil {
		t.Error("AdaptiveBudget + Convergent accepted")
	}
	if _, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), AdaptiveBudget: plan,
		Sampler: func() Sampler { return nil }}); err == nil {
		t.Error("AdaptiveBudget + Sampler accepted")
	}
	if _, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), AdaptiveBudget: plan}); err != nil {
		t.Errorf("plain AdaptiveBudget rejected: %v", err)
	}
	bad := &AdaptivePlan{Sampled: ConvergentConfig{BurstLen: 10, InitialSkip: 10, MaxSkip: 5, Epsilon: 0.5}}
	if _, err := NewValueProfiler(Options{TNV: DefaultTNVConfig(), AdaptiveBudget: bad}); err == nil {
		t.Error("invalid Sampled config accepted")
	}
}

func TestSiteBudgetString(t *testing.T) {
	for b, want := range map[SiteBudget]string{BudgetFull: "full", BudgetSampled: "sampled", BudgetSkip: "skip"} {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}
