package core

import (
	"strings"
	"testing"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
)

func TestTimelineRecordsCheckpoints(t *testing.T) {
	prog, err := asm.Assemble(phaseSrc) // 200k iterations; pc1 constant, pc2 phase flip
	if err != nil {
		t.Fatal(err)
	}
	tp := NewTimelineProfiler(nil, DefaultTNVConfig(), 10000)
	if _, err := atom.Run(prog, nil, false, tp); err != nil {
		t.Fatal(err)
	}
	tls := tp.Timelines(5)
	if len(tls) == 0 {
		t.Fatal("no timelines")
	}
	byPC := map[int]*Timeline{}
	for _, tl := range tls {
		byPC[tl.PC] = tl
	}
	constant := byPC[1]
	if constant == nil || len(constant.Points) != 20 {
		t.Fatalf("constant site points = %v", constant)
	}
	for i, p := range constant.Points {
		if p != 1.0 {
			t.Errorf("constant point %d = %v", i, p)
		}
	}
	// The constant site converges immediately.
	if at := constant.ConvergedAt(0.02); at > 0.1 {
		t.Errorf("constant ConvergedAt = %v", at)
	}
	// The phase site flips at 50%: its cumulative invariance keeps
	// moving until late in the run.
	phase := byPC[2]
	if at := phase.ConvergedAt(0.02); at < 0.5 {
		t.Errorf("phase site ConvergedAt = %v, want late (invariance still drifting)", at)
	}
	if f := phase.Final(); f < 0.45 || f > 0.55 {
		t.Errorf("phase final invariance = %v", f)
	}
}

func TestTimelineOrderingAndSparkline(t *testing.T) {
	prog, err := asm.Assemble(phaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	tp := NewTimelineProfiler(nil, DefaultTNVConfig(), 5000)
	if _, err := atom.Run(prog, nil, false, tp); err != nil {
		t.Fatal(err)
	}
	tls := tp.Timelines(1)
	for i := 1; i < len(tls); i++ {
		if tls[i-1].Stats.Exec < tls[i].Stats.Exec {
			t.Error("timelines not sorted by executions")
		}
	}
	sp := tls[0].Sparkline(20)
	if len(sp) != 20 {
		t.Errorf("sparkline length %d", len(sp))
	}
	for _, c := range sp {
		if c < '0' || c > '9' {
			t.Errorf("sparkline char %q", c)
		}
	}
	// Constant site (inv 1.0) renders all nines.
	for _, tl := range tls {
		if tl.PC == 1 && tl.Sparkline(10) != strings.Repeat("9", 10) {
			t.Errorf("constant sparkline = %q", tl.Sparkline(10))
		}
	}
}

func TestConvergedAtEdgeCases(t *testing.T) {
	empty := &Timeline{Stats: NewSiteStats(0, "x", DefaultTNVConfig(), false)}
	if empty.ConvergedAt(0.05) != 1 {
		t.Error("empty timeline should report 1")
	}
	s := NewSiteStats(0, "x", DefaultTNVConfig(), false)
	s.Observe(1)
	tl := &Timeline{Stats: s, Points: []float64{0.2, 0.9, 1.0}}
	// Final inv = 1.0 (single obs of 1): points stay within 0.15 of
	// the final from index 1 on (0.9 and 1.0), so ConvergedAt = 2/4.
	if got := tl.ConvergedAt(0.15); got != 0.5 {
		t.Errorf("ConvergedAt = %v, want 0.5", got)
	}
	// With a tighter criterion only the last point qualifies: 3/4.
	if got := tl.ConvergedAt(0.05); got != 0.75 {
		t.Errorf("tight ConvergedAt = %v, want 0.75", got)
	}
	allGood := &Timeline{Stats: s, Points: []float64{1.0, 1.0}}
	if got := allGood.ConvergedAt(0.05); got != float64(1)/3 {
		t.Errorf("ConvergedAt all-settled = %v, want 1/3", got)
	}
}
