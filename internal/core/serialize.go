package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// SiteRecord is the serializable form of one site's profile: the final
// TNV table plus the scalar counters. Exact per-value full profiles are
// deliberately not serialized — the paper's position is that the TNV
// table *is* the profile.
type SiteRecord struct {
	PC      int    `json:"pc"`
	Name    string `json:"name"`
	Exec    uint64 `json:"exec"`
	LVPHits uint64 `json:"lvpHits"`
	Zeros   uint64 `json:"zeros"`
	// Dropped counts profiled values the TNV table discarded without
	// touching any entry (a miss on a full, fully-steady table). They
	// are part of Exec but held by no Top entry, so the loader's
	// invariant is sum(Top counts) + Dropped ≤ Exec.
	Dropped uint64     `json:"dropped,omitempty"`
	Top     []TNVEntry `json:"top"`
}

// LVP recomputes last-value predictability from the record.
func (s *SiteRecord) LVP() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.LVPHits) / float64(s.Exec)
}

// InvTop recomputes the TNV invariance estimate from the record.
func (s *SiteRecord) InvTop(k int) float64 {
	if s.Exec == 0 {
		return 0
	}
	var sum uint64
	for i, e := range s.Top {
		if i >= k {
			break
		}
		sum += e.Count
	}
	return float64(sum) / float64(s.Exec)
}

// ProfileRecord is a saved profiling run. Outcome, when non-empty,
// records how the collecting run ended ("completed", "faulted",
// "deadline", "cancelled", "limit"); a partial profile is still a
// valid profile — the TNV tables simply cover a prefix of the run.
//
// Skipped is the run's sampler-skipped execution total, persisted so
// DutyCycle survives serialization. Merged, when non-empty, is the
// provenance of a merged record: one "program/input[:outcome]" label
// per source run folded in by MergeRecords.
//
// Salvaged and Attempts are supervision provenance (see
// internal/supervise): Salvaged marks a profile a supervisor kept
// after the job's retry/wall-clock budget ran out — trustworthy but
// covering only the prefix the budget paid for — and Attempts counts
// how many runs (including retries) fed the record. Consumers that
// must not mix degraded data into exact baselines filter on Salvaged.
type ProfileRecord struct {
	Program  string       `json:"program"`
	Input    string       `json:"input"`
	K        int          `json:"k"`
	Outcome  string       `json:"outcome,omitempty"`
	Salvaged bool         `json:"salvaged,omitempty"`
	Attempts int          `json:"attempts,omitempty"`
	Skipped  uint64       `json:"skipped,omitempty"`
	Merged   []string     `json:"merged,omitempty"`
	Sites    []SiteRecord `json:"sites"`
}

// DutyCycle recomputes profiled / (profiled + skipped) from the record
// (1 when nothing was skipped and nothing profiled either).
func (r *ProfileRecord) DutyCycle() float64 {
	var profiled uint64
	for i := range r.Sites {
		profiled += r.Sites[i].Exec
	}
	total := profiled + r.Skipped
	if total == 0 {
		return 1
	}
	return float64(profiled) / float64(total)
}

// provenance returns the source-run labels of the record: its Merged
// list if it is already a merge, else its own program/input label.
func (r *ProfileRecord) provenance() []string {
	if len(r.Merged) > 0 {
		return r.Merged
	}
	lab := r.Program + "/" + r.Input
	if r.Outcome != "" {
		lab += ":" + r.Outcome
	}
	if r.Salvaged {
		lab += ":salvaged"
	}
	return []string{lab}
}

// Record converts a profile for serialization, tagging it with the
// program and input names.
func (pr *Profile) Record(programName, inputName string) *ProfileRecord {
	rec := &ProfileRecord{Program: programName, Input: inputName, K: pr.K, Skipped: pr.Skipped}
	for _, s := range pr.Sites {
		if s.Exec == 0 {
			continue
		}
		rec.Sites = append(rec.Sites, SiteRecord{
			PC:      s.PC,
			Name:    s.Name,
			Exec:    s.Exec,
			LVPHits: s.LVPHits,
			Zeros:   s.Zeros,
			Dropped: s.TNV.Dropped(),
			Top:     s.TNV.Top(pr.K),
		})
	}
	return rec
}

// WriteJSON serializes the record.
func (r *ProfileRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// RepairPolicy selects how the validating loader treats a damaged
// profile record.
type RepairPolicy int

const (
	// RepairNone rejects the whole record on the first violation.
	RepairNone RepairPolicy = iota
	// RepairDrop salvages what it can: undecodable or invalid sites
	// are dropped, out-of-range counters are clamped, duplicate-PC
	// sites are discarded, and a truncated sites array yields the
	// intact prefix. The LoadReport says what was lost.
	RepairDrop
)

// LoadReport summarizes what the validating loader salvaged, dropped,
// and clamped.
type LoadReport struct {
	SitesLoaded  int
	SitesDropped int
	SitesClamped int
	// Truncated is set when the input ended mid-record and the loaded
	// sites are a prefix of what was written.
	Truncated bool
	// Problems holds human-readable descriptions of the first few
	// violations encountered.
	Problems []string
}

const maxReportedProblems = 20

func (lr *LoadReport) addProblem(format string, args ...any) {
	if len(lr.Problems) < maxReportedProblems {
		lr.Problems = append(lr.Problems, fmt.Sprintf(format, args...))
	}
}

// Clean reports whether the record loaded without any repair.
func (lr *LoadReport) Clean() bool {
	return lr.SitesDropped == 0 && lr.SitesClamped == 0 && !lr.Truncated && len(lr.Problems) == 0
}

// String renders a one-line salvage summary.
func (lr *LoadReport) String() string {
	s := fmt.Sprintf("loaded %d sites (%d dropped, %d clamped)",
		lr.SitesLoaded, lr.SitesDropped, lr.SitesClamped)
	if lr.Truncated {
		s += ", input truncated"
	}
	return s
}

// maxTableWidth bounds the accepted TNV width; anything larger is a
// corrupt header, not a plausible configuration.
const maxTableWidth = 1 << 16

// ReadProfileRecord deserializes and validates a record written by
// WriteJSON, rejecting it outright on any violation (RepairNone). A
// record it returns never violates the profile invariants: site PCs
// are unique and non-negative, per-site counters satisfy
// LVPHits ≤ Exec, Zeros ≤ Exec and sum(Top counts) + Dropped ≤ Exec
// (hence InvTop(k) ≤ 1), and TNV entries are sorted by descending
// count.
func ReadProfileRecord(r io.Reader) (*ProfileRecord, error) {
	rec, _, err := ReadProfileRecordPolicy(r, RepairNone)
	return rec, err
}

// ReadProfileRecordPolicy is the validating loader behind
// ReadProfileRecord. Under RepairDrop it tolerates damaged input —
// truncated JSON, undecodable sites, impossible counters — salvaging
// every site that validates and reporting what was lost; it fails only
// when nothing trustworthy remains (unreadable header or an invalid
// table width). The returned record satisfies the same invariants as
// ReadProfileRecord under either policy.
func ReadProfileRecordPolicy(r io.Reader, policy RepairPolicy) (*ProfileRecord, *LoadReport, error) {
	rec := &ProfileRecord{}
	rep := &LoadReport{}
	dec := json.NewDecoder(r)

	tok, err := dec.Token()
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading profile record: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, nil, fmt.Errorf("core: profile record is not a JSON object (starts with %v)", tok)
	}

	seen := make(map[int]bool)
fields:
	for {
		tok, err := dec.Token()
		if err != nil {
			if policy == RepairDrop && isTruncation(err) {
				rep.Truncated = true
				rep.addProblem("record truncated: %v", err)
				break fields
			}
			return nil, nil, fmt.Errorf("core: reading profile record: %w", err)
		}
		if d, ok := tok.(json.Delim); ok && d == '}' {
			break
		}
		key, ok := tok.(string)
		if !ok {
			return nil, nil, fmt.Errorf("core: profile record has malformed key %v", tok)
		}
		switch key {
		case "program":
			err = dec.Decode(&rec.Program)
		case "input":
			err = dec.Decode(&rec.Input)
		case "outcome":
			err = dec.Decode(&rec.Outcome)
		case "salvaged":
			err = dec.Decode(&rec.Salvaged)
		case "attempts":
			err = dec.Decode(&rec.Attempts)
		case "skipped":
			err = dec.Decode(&rec.Skipped)
		case "merged":
			err = dec.Decode(&rec.Merged)
		case "k":
			err = dec.Decode(&rec.K)
		case "sites":
			err = readSites(dec, rec, seen, policy, rep)
			if err == nil {
				continue
			}
			var stop *truncatedSites
			if policy == RepairDrop && errors.As(err, &stop) {
				rep.Truncated = true
				rep.addProblem("sites array truncated: %v", stop.err)
				break fields
			}
		default:
			// Unknown field: skip its value for forward compatibility.
			var skip json.RawMessage
			err = dec.Decode(&skip)
		}
		if err != nil {
			if policy == RepairDrop && isTruncation(err) {
				rep.Truncated = true
				rep.addProblem("record truncated in %q: %v", key, err)
				break fields
			}
			return nil, nil, fmt.Errorf("core: profile record field %q: %w", key, err)
		}
	}

	if rec.K <= 0 || rec.K > maxTableWidth {
		return nil, nil, fmt.Errorf("core: profile record has invalid table width %d", rec.K)
	}
	if rec.Attempts < 0 {
		if policy == RepairNone {
			return nil, nil, fmt.Errorf("core: profile record has negative attempt count %d", rec.Attempts)
		}
		rep.addProblem("attempt count %d clamped to 0", rec.Attempts)
		rec.Attempts = 0
	}
	// Sites wider than the declared table width are a header/site
	// mismatch; validate now that K is known.
	kept := rec.Sites[:0]
	for i := range rec.Sites {
		s := &rec.Sites[i]
		if len(s.Top) > rec.K {
			if policy == RepairNone {
				return nil, nil, fmt.Errorf("core: site pc %d has %d TNV entries, table width %d", s.PC, len(s.Top), rec.K)
			}
			rep.addProblem("site pc %d: %d TNV entries truncated to table width %d", s.PC, len(s.Top), rec.K)
			s.Top = s.Top[:rec.K]
			rep.SitesClamped++
		}
		kept = append(kept, *s)
	}
	rec.Sites = kept
	rep.SitesLoaded = len(rec.Sites)
	sort.Slice(rec.Sites, func(i, j int) bool { return rec.Sites[i].PC < rec.Sites[j].PC })
	return rec, rep, nil
}

// truncatedSites signals that the sites array ended mid-stream; the
// decoder cannot continue past it.
type truncatedSites struct{ err error }

func (t *truncatedSites) Error() string { return fmt.Sprintf("core: sites truncated: %v", t.err) }

func isTruncation(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

func readSites(dec *json.Decoder, rec *ProfileRecord, seen map[int]bool, policy RepairPolicy, rep *LoadReport) error {
	tok, err := dec.Token()
	if err != nil {
		return &truncatedSites{err: err}
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("sites is not an array (starts with %v)", tok)
	}
	for dec.More() {
		// Decode to raw bytes first: a syntactically intact but
		// semantically bad site (negative count, wrong type) must not
		// kill the decoder, so the typed unmarshal happens separately.
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return &truncatedSites{err: err}
		}
		var s SiteRecord
		if err := json.Unmarshal(raw, &s); err != nil {
			if policy == RepairNone {
				return fmt.Errorf("undecodable site: %w", err)
			}
			rep.SitesDropped++
			rep.addProblem("dropped undecodable site: %v", err)
			continue
		}
		keep, clamped, err := validateSite(&s, seen, policy, rep)
		if err != nil {
			return err
		}
		if !keep {
			rep.SitesDropped++
			continue
		}
		if clamped {
			rep.SitesClamped++
		}
		seen[s.PC] = true
		rec.Sites = append(rec.Sites, s)
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return &truncatedSites{err: err}
	}
	return nil
}

// validateSite enforces the per-site invariants. Under RepairNone any
// violation returns an error; under RepairDrop irreparable sites are
// dropped (keep=false) and repairable counters are clamped.
func validateSite(s *SiteRecord, seen map[int]bool, policy RepairPolicy, rep *LoadReport) (keep, clamped bool, err error) {
	strict := policy == RepairNone
	fail := func(format string, args ...any) (bool, bool, error) {
		if strict {
			return false, false, fmt.Errorf("site pc %d: %s", s.PC, fmt.Sprintf(format, args...))
		}
		rep.addProblem("dropped site pc %d: %s", s.PC, fmt.Sprintf(format, args...))
		return false, false, nil
	}

	if s.PC < 0 {
		return fail("negative pc")
	}
	if seen[s.PC] {
		return fail("duplicate pc")
	}
	if s.Exec == 0 {
		return fail("zero executions")
	}
	if s.LVPHits > s.Exec {
		if strict {
			return false, false, fmt.Errorf("site pc %d: LVP hits %d exceed executions %d", s.PC, s.LVPHits, s.Exec)
		}
		rep.addProblem("site pc %d: LVP hits %d clamped to executions %d", s.PC, s.LVPHits, s.Exec)
		s.LVPHits = s.Exec
		clamped = true
	}
	if s.Zeros > s.Exec {
		if strict {
			return false, false, fmt.Errorf("site pc %d: zero count %d exceeds executions %d", s.PC, s.Zeros, s.Exec)
		}
		rep.addProblem("site pc %d: zero count %d clamped to executions %d", s.PC, s.Zeros, s.Exec)
		s.Zeros = s.Exec
		clamped = true
	}

	// TNV entries: no zero counts, no duplicate values, sorted by
	// descending count, and total count bounded by Exec so that
	// InvTop(k) can never exceed 1.
	entries := s.Top[:0]
	valSeen := make(map[int64]bool, len(s.Top))
	for _, e := range s.Top {
		switch {
		case e.Count == 0:
			if strict {
				return false, false, fmt.Errorf("site pc %d: TNV entry %d has zero count", s.PC, e.Value)
			}
			rep.addProblem("site pc %d: dropped zero-count TNV entry %d", s.PC, e.Value)
			clamped = true
			continue
		case valSeen[e.Value]:
			if strict {
				return false, false, fmt.Errorf("site pc %d: duplicate TNV value %d", s.PC, e.Value)
			}
			rep.addProblem("site pc %d: dropped duplicate TNV value %d", s.PC, e.Value)
			clamped = true
			continue
		}
		valSeen[e.Value] = true
		entries = append(entries, e)
	}
	s.Top = entries
	sort.SliceStable(s.Top, func(i, j int) bool {
		if s.Top[i].Count != s.Top[j].Count {
			return s.Top[i].Count > s.Top[j].Count
		}
		return s.Top[i].Value < s.Top[j].Value
	})

	var sum uint64
	for i := range s.Top {
		c := s.Top[i].Count
		if c > s.Exec-sum { // counts can exceed Exec only through corruption
			if strict {
				return false, false, fmt.Errorf("site pc %d: TNV counts exceed executions %d", s.PC, s.Exec)
			}
			rep.addProblem("site pc %d: TNV counts clamped to executions %d", s.PC, s.Exec)
			s.Top[i].Count = s.Exec - sum
			if s.Top[i].Count == 0 {
				s.Top = s.Top[:i]
			} else {
				s.Top = s.Top[:i+1]
			}
			clamped = true
			break
		}
		sum += c
	}
	// Dropped values are part of Exec but held by no entry, so the
	// retained counts plus the drop counter can never exceed Exec.
	if s.Dropped > s.Exec-sum {
		if strict {
			return false, false, fmt.Errorf("site pc %d: TNV counts %d + dropped %d exceed executions %d", s.PC, sum, s.Dropped, s.Exec)
		}
		rep.addProblem("site pc %d: dropped count %d clamped to %d", s.PC, s.Dropped, s.Exec-sum)
		s.Dropped = s.Exec - sum
		clamped = true
	}
	return true, clamped, nil
}

// MergeRecords combines two profiles of the same program into one, the
// way a pipeline merges salvaged partial profiles from interrupted
// runs: per-site counters add, and TNV tables merge by value with the
// combined top K kept. The LVP hit at each splice boundary is lost (at
// most one execution per site), so merged LVP is an approximation;
// merged TNV counts are exact for values both tables retained.
func MergeRecords(a, b *ProfileRecord) (*ProfileRecord, error) {
	if a.K != b.K {
		return nil, fmt.Errorf("core: merging records with different table widths %d and %d", a.K, b.K)
	}
	if a.Program != b.Program {
		return nil, fmt.Errorf("core: merging records of different programs %q and %q", a.Program, b.Program)
	}
	out := &ProfileRecord{Program: a.Program, Input: a.Input, K: a.K, Skipped: a.Skipped + b.Skipped}
	if b.Input != a.Input {
		out.Input = a.Input + "+" + b.Input
	}
	// Supervision provenance survives the merge: a merge containing any
	// salvaged shard is itself degraded, and attempt counts add like the
	// collection cost they measure.
	out.Salvaged = a.Salvaged || b.Salvaged
	out.Attempts = a.Attempts + b.Attempts
	out.Merged = append(append([]string(nil), a.provenance()...), b.provenance()...)
	bByPC := make(map[int]*SiteRecord, len(b.Sites))
	for i := range b.Sites {
		bByPC[b.Sites[i].PC] = &b.Sites[i]
	}
	for i := range a.Sites {
		sa := a.Sites[i]
		if sb, ok := bByPC[sa.PC]; ok {
			delete(bByPC, sa.PC)
			sa.Exec += sb.Exec
			sa.LVPHits += sb.LVPHits
			sa.Zeros += sb.Zeros
			sa.Dropped += sb.Dropped
			sa.Top = mergeTop(sa.Top, sb.Top, a.K)
		}
		out.Sites = append(out.Sites, sa)
	}
	for i := range b.Sites {
		if _, ok := bByPC[b.Sites[i].PC]; ok {
			out.Sites = append(out.Sites, b.Sites[i])
		}
	}
	sort.Slice(out.Sites, func(i, j int) bool { return out.Sites[i].PC < out.Sites[j].PC })
	return out, nil
}

func mergeTop(a, b []TNVEntry, k int) []TNVEntry {
	counts := make(map[int64]uint64, len(a)+len(b))
	for _, e := range a {
		counts[e.Value] += e.Count
	}
	for _, e := range b {
		counts[e.Value] += e.Count
	}
	merged := make([]TNVEntry, 0, len(counts))
	for v, c := range counts {
		merged = append(merged, TNVEntry{Value: v, Count: c})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Value < merged[j].Value
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// Comparison summarizes two runs of the same program on different
// inputs (the paper's Table V.5 / Wall-style cross-input study).
type Comparison struct {
	CommonSites int
	OnlyA       int
	OnlyB       int
	// Correlation of per-site Inv-Top(1) across the common sites.
	InvCorrelation float64
	// ClassAgreement is the fraction of common sites classified the
	// same (invariant / semi-invariant / variant) in both runs.
	ClassAgreement float64
	// TopValueAgreement is the fraction of common sites whose single
	// most frequent value is identical in both runs.
	TopValueAgreement float64
	// MeanAbsInvDiff is the mean |Inv-Top(1)_A − Inv-Top(1)_B|.
	MeanAbsInvDiff float64
}

// Compare joins two records by site pc and computes the cross-input
// stability metrics.
func Compare(a, b *ProfileRecord, th ClassifyThresholds) *Comparison {
	bByPC := make(map[int]*SiteRecord, len(b.Sites))
	for i := range b.Sites {
		bByPC[b.Sites[i].PC] = &b.Sites[i]
	}
	c := &Comparison{OnlyB: len(b.Sites)}
	var xs, ys []float64
	var agree, topAgree, absDiff float64
	for i := range a.Sites {
		sa := &a.Sites[i]
		sb, ok := bByPC[sa.PC]
		if !ok {
			c.OnlyA++
			continue
		}
		c.CommonSites++
		c.OnlyB--
		ia, ib := sa.InvTop(1), sb.InvTop(1)
		xs = append(xs, ia)
		ys = append(ys, ib)
		absDiff += math.Abs(ia - ib)
		if classOf(ia, th) == classOf(ib, th) {
			agree++
		}
		if len(sa.Top) > 0 && len(sb.Top) > 0 && sa.Top[0].Value == sb.Top[0].Value {
			topAgree++
		}
	}
	if c.CommonSites > 0 {
		n := float64(c.CommonSites)
		c.ClassAgreement = agree / n
		c.TopValueAgreement = topAgree / n
		c.MeanAbsInvDiff = absDiff / n
		c.InvCorrelation = correlation(xs, ys)
	}
	return c
}

func classOf(inv float64, th ClassifyThresholds) Class {
	switch {
	case inv >= th.Invariant:
		return Invariant
	case inv >= th.SemiInvariant:
		return SemiInvariant
	}
	return Variant
}

// correlation is Pearson's r (0 for degenerate inputs); duplicated from
// internal/stats to keep core dependency-free.
func correlation(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
