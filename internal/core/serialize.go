package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// SiteRecord is the serializable form of one site's profile: the final
// TNV table plus the scalar counters. Exact per-value full profiles are
// deliberately not serialized — the paper's position is that the TNV
// table *is* the profile.
type SiteRecord struct {
	PC      int        `json:"pc"`
	Name    string     `json:"name"`
	Exec    uint64     `json:"exec"`
	LVPHits uint64     `json:"lvpHits"`
	Zeros   uint64     `json:"zeros"`
	Top     []TNVEntry `json:"top"`
}

// LVP recomputes last-value predictability from the record.
func (s *SiteRecord) LVP() float64 {
	if s.Exec == 0 {
		return 0
	}
	return float64(s.LVPHits) / float64(s.Exec)
}

// InvTop recomputes the TNV invariance estimate from the record.
func (s *SiteRecord) InvTop(k int) float64 {
	if s.Exec == 0 {
		return 0
	}
	var sum uint64
	for i, e := range s.Top {
		if i >= k {
			break
		}
		sum += e.Count
	}
	return float64(sum) / float64(s.Exec)
}

// ProfileRecord is a saved profiling run.
type ProfileRecord struct {
	Program string       `json:"program"`
	Input   string       `json:"input"`
	K       int          `json:"k"`
	Sites   []SiteRecord `json:"sites"`
}

// Record converts a profile for serialization, tagging it with the
// program and input names.
func (pr *Profile) Record(programName, inputName string) *ProfileRecord {
	rec := &ProfileRecord{Program: programName, Input: inputName, K: pr.K}
	for _, s := range pr.Sites {
		if s.Exec == 0 {
			continue
		}
		rec.Sites = append(rec.Sites, SiteRecord{
			PC:      s.PC,
			Name:    s.Name,
			Exec:    s.Exec,
			LVPHits: s.LVPHits,
			Zeros:   s.Zeros,
			Top:     s.TNV.Top(pr.K),
		})
	}
	return rec
}

// WriteJSON serializes the record.
func (r *ProfileRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// ReadProfileRecord deserializes a record written by WriteJSON.
func ReadProfileRecord(r io.Reader) (*ProfileRecord, error) {
	var rec ProfileRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("core: reading profile record: %w", err)
	}
	if rec.K <= 0 {
		return nil, fmt.Errorf("core: profile record has invalid table width %d", rec.K)
	}
	sort.Slice(rec.Sites, func(i, j int) bool { return rec.Sites[i].PC < rec.Sites[j].PC })
	return &rec, nil
}

// Comparison summarizes two runs of the same program on different
// inputs (the paper's Table V.5 / Wall-style cross-input study).
type Comparison struct {
	CommonSites int
	OnlyA       int
	OnlyB       int
	// Correlation of per-site Inv-Top(1) across the common sites.
	InvCorrelation float64
	// ClassAgreement is the fraction of common sites classified the
	// same (invariant / semi-invariant / variant) in both runs.
	ClassAgreement float64
	// TopValueAgreement is the fraction of common sites whose single
	// most frequent value is identical in both runs.
	TopValueAgreement float64
	// MeanAbsInvDiff is the mean |Inv-Top(1)_A − Inv-Top(1)_B|.
	MeanAbsInvDiff float64
}

// Compare joins two records by site pc and computes the cross-input
// stability metrics.
func Compare(a, b *ProfileRecord, th ClassifyThresholds) *Comparison {
	bByPC := make(map[int]*SiteRecord, len(b.Sites))
	for i := range b.Sites {
		bByPC[b.Sites[i].PC] = &b.Sites[i]
	}
	c := &Comparison{OnlyB: len(b.Sites)}
	var xs, ys []float64
	var agree, topAgree, absDiff float64
	for i := range a.Sites {
		sa := &a.Sites[i]
		sb, ok := bByPC[sa.PC]
		if !ok {
			c.OnlyA++
			continue
		}
		c.CommonSites++
		c.OnlyB--
		ia, ib := sa.InvTop(1), sb.InvTop(1)
		xs = append(xs, ia)
		ys = append(ys, ib)
		absDiff += math.Abs(ia - ib)
		if classOf(ia, th) == classOf(ib, th) {
			agree++
		}
		if len(sa.Top) > 0 && len(sb.Top) > 0 && sa.Top[0].Value == sb.Top[0].Value {
			topAgree++
		}
	}
	if c.CommonSites > 0 {
		n := float64(c.CommonSites)
		c.ClassAgreement = agree / n
		c.TopValueAgreement = topAgree / n
		c.MeanAbsInvDiff = absDiff / n
		c.InvCorrelation = correlation(xs, ys)
	}
	return c
}

func classOf(inv float64, th ClassifyThresholds) Class {
	switch {
	case inv >= th.Invariant:
		return Invariant
	case inv >= th.SemiInvariant:
		return SemiInvariant
	}
	return Variant
}

// correlation is Pearson's r (0 for degenerate inputs); duplicated from
// internal/stats to keep core dependency-free.
func correlation(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
