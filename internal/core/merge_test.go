package core

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"strings"
	"testing"
)

// --- regression: Top with non-positive k must not panic ---

func TestTopNegativeK(t *testing.T) {
	tnv := NewTNV(TNVConfig{Size: 4, Steady: 2})
	for _, v := range []int64{1, 2, 1, 3} {
		tnv.Add(v)
	}
	for _, k := range []int{-1, -100, 0} {
		if got := tnv.Top(k); len(got) != 0 {
			t.Errorf("TNV Top(%d) = %v, want empty", k, got)
		}
	}
	if got := tnv.Top(2); len(got) != 2 {
		t.Errorf("Top(2) returned %d entries", len(got))
	}

	f := NewFullProfile()
	f.Add(1)
	f.Add(1)
	f.Add(2)
	for _, k := range []int{-1, -100, 0} {
		if got := f.Top(k); len(got) != 0 {
			t.Errorf("full Top(%d) = %v, want empty", k, got)
		}
	}
	if got := f.Top(1); len(got) != 1 || got[0].Value != 1 {
		t.Errorf("full Top(1) = %v", got)
	}
}

// --- regression: Clears must count only clears that flushed entries ---

func TestClearsCountOnlyFlushes(t *testing.T) {
	cfg := TNVConfig{Size: 4, Steady: 2, ClearInterval: 10}

	// Two distinct values: the table never grows past the steady part,
	// so crossing clear intervals must not count any clears.
	tnv := NewTNV(cfg)
	for i := 0; i < 35; i++ {
		tnv.Add(int64(i % 2))
	}
	if got := tnv.Clears(); got != 0 {
		t.Errorf("steady-only table counted %d clears, want 0", got)
	}

	// Four distinct values: the clear part is populated at the interval
	// boundary, so the clear both flushes and counts.
	tnv = NewTNV(cfg)
	for i := 0; i < 10; i++ {
		tnv.Add(int64(i % 4))
	}
	if got := tnv.Clears(); got != 1 {
		t.Errorf("flushing clear counted %d, want 1", got)
	}
	if got := tnv.Len(); got != cfg.Steady {
		t.Errorf("after clear table holds %d entries, want %d", got, cfg.Steady)
	}
}

// --- TNV merge ---

func TestTNVMergeUnion(t *testing.T) {
	cfg := TNVConfig{Size: 10, Steady: 5}
	a := NewTNV(cfg)
	for _, v := range []int64{1, 1, 1, 1, 1, 2, 2, 2} {
		a.Add(v)
	}
	b := NewTNV(cfg)
	for _, v := range []int64{1, 1, 3, 3, 3, 3, 3, 3, 3} {
		b.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []TNVEntry{{Value: 1, Count: 7}, {Value: 3, Count: 7}, {Value: 2, Count: 3}}
	got := a.Top(10)
	if len(got) != len(want) {
		t.Fatalf("merged entries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if a.Updates() != 17 {
		t.Errorf("merged updates %d, want 17", a.Updates())
	}
}

func TestTNVMergeRejectsConfigMismatch(t *testing.T) {
	a := NewTNV(TNVConfig{Size: 10, Steady: 5})
	b := NewTNV(TNVConfig{Size: 8, Steady: 4})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across configs did not fail")
	}
}

func TestTNVMergeTruncatesToSize(t *testing.T) {
	cfg := TNVConfig{Size: 2, Steady: 0}
	a := NewTNV(cfg)
	a.Add(1)
	a.Add(2)
	b := NewTNV(cfg)
	b.Add(3)
	b.Add(3)
	b.Add(2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Top(10)
	want := []TNVEntry{{Value: 2, Count: 2}, {Value: 3, Count: 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("merged truncated table %v, want %v", got, want)
	}
}

func TestTNVMergeFoldsClearPhase(t *testing.T) {
	cfg := TNVConfig{Size: 4, Steady: 2, ClearInterval: 10}
	a := NewTNV(cfg)
	b := NewTNV(cfg)
	for i := 0; i < 7; i++ {
		a.Add(int64(i))
		b.Add(int64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// 7 + 7 = 14 updates since the last clear, folded modulo 10: the
	// merge itself must not have triggered a clear.
	if a.Clears() != 0 {
		t.Errorf("merge triggered %d clears", a.Clears())
	}
	if a.sinceClear != 4 {
		t.Errorf("merged sinceClear %d, want 4", a.sinceClear)
	}
}

// --- site merge ---

func TestSiteMergeCounters(t *testing.T) {
	cfg := TNVConfig{Size: 10, Steady: 5}
	a := NewSiteStats(7, "f+7", cfg, true)
	observeAll(a, 0, 5, 5, 5)
	a.Skipped = 3
	b := NewSiteStats(7, "f+7", cfg, true)
	observeAll(b, 5, 0, 0)
	b.Skipped = 2

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Exec != 7 || a.Zeros != 3 || a.Skipped != 5 {
		t.Errorf("merged exec/zeros/skipped = %d/%d/%d, want 7/3/5", a.Exec, a.Zeros, a.Skipped)
	}
	// a scored 2 LVP hits (5,5 then 5), b scored 1 (0 then 0).
	if a.LVPHits != 3 {
		t.Errorf("merged LVP hits %d, want 3", a.LVPHits)
	}
	if a.Full == nil || a.Full.Total() != 7 || a.Full.Count(5) != 4 || a.Full.Count(0) != 3 {
		t.Errorf("merged full profile wrong: %+v", a.Full)
	}
	// Last-value state adopts the later shard's.
	if !a.hasLast || a.last != 0 {
		t.Errorf("merged last = (%d,%v), want (0,true)", a.last, a.hasLast)
	}
}

func TestSiteMergeDropsPartialGroundTruth(t *testing.T) {
	cfg := TNVConfig{Size: 10, Steady: 5}
	a := NewSiteStats(1, "f+1", cfg, true)
	observeAll(a, 1)
	b := NewSiteStats(1, "f+1", cfg, false)
	observeAll(b, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Full != nil {
		t.Error("merge kept a partial full profile")
	}
}

func TestSiteMergeRejectsMismatch(t *testing.T) {
	cfg := TNVConfig{Size: 10, Steady: 5}
	a := NewSiteStats(1, "f+1", cfg, false)
	b := NewSiteStats(2, "f+2", cfg, false)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different pcs did not fail")
	}
	c := NewSiteStats(1, "g+1", cfg, false)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging conflicting names did not fail")
	}
}

// --- profile merge ---

func siteWith(pc int, name string, cfg TNVConfig, vals ...int64) *SiteStats {
	s := NewSiteStats(pc, name, cfg, false)
	observeAll(s, vals...)
	return s
}

func TestProfileMergeSharedAndUnique(t *testing.T) {
	cfg := TNVConfig{Size: 10, Steady: 5}
	a := &Profile{
		K:       cfg.Size,
		Skipped: 4,
		Pruned:  2,
		Sites: []*SiteStats{
			siteWith(1, "f+1", cfg, 9, 9),
			siteWith(3, "f+3", cfg, 1),
		},
	}
	b := &Profile{
		K:       cfg.Size,
		Skipped: 6,
		Pruned:  2,
		Sites: []*SiteStats{
			siteWith(2, "f+2", cfg, 5),
			siteWith(3, "f+3", cfg, 9, 1),
		},
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skipped != 10 {
		t.Errorf("merged skipped %d, want 10", m.Skipped)
	}
	// Pruning is a per-program property, not additive across shards.
	if m.Pruned != 2 {
		t.Errorf("merged pruned %d, want 2", m.Pruned)
	}
	pcs := make([]int, len(m.Sites))
	for i, s := range m.Sites {
		pcs[i] = s.PC
	}
	if len(pcs) != 3 || pcs[0] != 1 || pcs[1] != 2 || pcs[2] != 3 {
		t.Fatalf("merged site pcs %v, want [1 2 3]", pcs)
	}
	if got := m.Site(3).Exec; got != 3 {
		t.Errorf("shared site exec %d, want 3", got)
	}
	// Inputs must be untouched: a's shared site still holds only its
	// own executions.
	if a.Site(3).Exec != 1 || b.Site(3).Exec != 2 {
		t.Error("Merge modified its inputs")
	}
}

func TestProfileMergeRejectsWidthMismatch(t *testing.T) {
	a := &Profile{K: 10}
	b := &Profile{K: 8}
	if _, err := a.Merge(b); err == nil {
		t.Fatal("merging different table widths did not fail")
	}
}

// --- checkpoint: per-site skip counters (envelope version 1) ---

func skippedProfiler(t *testing.T) *ValueProfiler {
	t.Helper()
	cfg := TNVConfig{Size: 10, Steady: 5}
	vp, err := NewValueProfiler(Options{TNV: cfg})
	if err != nil {
		t.Fatal(err)
	}
	s1 := siteWith(1, "f+1", cfg, 7, 7, 7)
	s1.Skipped = 11
	s2 := NewSiteStats(2, "f+2", cfg, false)
	s2.Skipped = 4 // skipped-only site: must still be checkpointed
	vp.sites[1] = s1
	vp.sites[2] = s2
	return vp
}

func TestCheckpointPersistsPerSiteSkipped(t *testing.T) {
	vp := skippedProfiler(t)
	if got := vp.Skipped(); got != 15 {
		t.Fatalf("profiler skipped %d, want 15", got)
	}
	ck, err := CheckpointOf(vp, nil, "p", "test")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	ck2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bySkip := map[int]uint64{}
	for _, s := range ck2.Sites {
		bySkip[s.PC] = s.Skipped
	}
	if bySkip[1] != 11 || bySkip[2] != 4 {
		t.Errorf("restored per-site skips %v, want {1:11 2:4}", bySkip)
	}

	vp2, err := NewValueProfiler(Options{TNV: vp.opts.TNV})
	if err != nil {
		t.Fatal(err)
	}
	if err := vp2.Seed(ck2); err != nil {
		t.Fatal(err)
	}
	if got := vp2.Skipped(); got != 15 {
		t.Errorf("resumed profiler skipped %d, want 15", got)
	}
	if vp2.seedSkipped != 0 {
		t.Errorf("versioned checkpoint left unattributed baseline %d", vp2.seedSkipped)
	}
}

// reversion re-encodes a written checkpoint with a different envelope
// version (recomputing the CRC), simulating files from other writers.
func reversion(t *testing.T, ck *Checkpoint, version int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	env.Version = version
	env.CRC32 = crc32.ChecksumIEEE(env.Payload)
	out, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewBuffer(out)
}

func TestLegacyCheckpointLoadable(t *testing.T) {
	// A PR-1 writer recorded only the run-wide skip total. Strip the
	// version and the per-site counters and the file must still load,
	// with the total surviving as an unattributed baseline.
	vp := skippedProfiler(t)
	ck, err := CheckpointOf(vp, nil, "p", "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ck.Sites {
		ck.Sites[i].Skipped = 0
	}
	buf := reversion(t, ck, 0)
	if strings.Contains(buf.String(), `"version"`) {
		t.Fatal("version 0 should serialize as an absent field")
	}
	ck2, err := ReadCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	vp2, err := NewValueProfiler(Options{TNV: vp.opts.TNV})
	if err != nil {
		t.Fatal(err)
	}
	if err := vp2.Seed(ck2); err != nil {
		t.Fatal(err)
	}
	if got := vp2.Skipped(); got != 15 {
		t.Errorf("legacy resume skipped %d, want 15", got)
	}
	if vp2.seedSkipped != 15 {
		t.Errorf("legacy baseline %d, want 15", vp2.seedSkipped)
	}
}

func TestFutureCheckpointVersionRejected(t *testing.T) {
	vp := skippedProfiler(t)
	ck, err := CheckpointOf(vp, nil, "p", "test")
	if err != nil {
		t.Fatal(err)
	}
	buf := reversion(t, ck, checkpointVersion+1)
	if _, err := ReadCheckpoint(buf); err == nil {
		t.Fatal("future envelope version was accepted")
	}
}
