package core

import (
	"bytes"
	"testing"
)

// FuzzReadProfileRecord drives both loader policies over arbitrary
// bytes. The loader must never panic, and whatever it accepts must
// satisfy the profile invariants — in particular no site may report
// Inv-Top(k) above 1.0, the property every downstream consumer
// assumes.
func FuzzReadProfileRecord(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"program":"p","input":"i","k":10,"sites":[]}`))
	f.Add([]byte(`{"program":"p","input":"i","k":10,"sites":[` +
		`{"pc":3,"name":"a","exec":100,"lvpHits":90,"zeros":5,` +
		`"top":[{"Value":7,"Count":60},{"Value":1,"Count":40}]}]}`))
	// Violations the validator must catch.
	f.Add([]byte(`{"k":10,"sites":[{"pc":1,"exec":10,"top":[{"Value":1,"Count":999}]}]}`))
	f.Add([]byte(`{"k":10,"sites":[{"pc":1,"exec":5},{"pc":1,"exec":5}]}`))
	f.Add([]byte(`{"k":10,"sites":[{"pc":-4,"exec":5}]}`))
	f.Add([]byte(`{"k":0,"sites":[]}`))
	f.Add([]byte(`{"program":"p","outcome":"fault","k":10,"sites":[{"pc":1,"exec":`)) // truncated
	f.Add([]byte(`{"unknown":{"nested":[1,2,3]},"k":10,"sites":[]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"k":1e99,"sites":[]}`))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, policy := range []RepairPolicy{RepairNone, RepairDrop} {
			rec, rep, err := ReadProfileRecordPolicy(bytes.NewReader(data), policy)
			if err != nil {
				continue
			}
			if rec == nil || rep == nil {
				t.Fatalf("policy %v: nil record or report without error", policy)
			}
			if rec.K < 1 || rec.K > maxTableWidth {
				t.Fatalf("accepted out-of-range k %d", rec.K)
			}
			seen := make(map[int]bool)
			for i := range rec.Sites {
				s := &rec.Sites[i]
				if s.PC < 0 || s.Exec <= 0 || seen[s.PC] {
					t.Fatalf("accepted invalid site %+v", s)
				}
				seen[s.PC] = true
				if s.LVPHits > s.Exec || s.Zeros > s.Exec {
					t.Fatalf("counters exceed executions: %+v", s)
				}
				// Checking every k up to rec.K is quadratic when the
				// table is wide; the low ks and k = K cover the sum.
				for _, k := range []int{1, 2, 3, rec.K} {
					if inv := s.InvTop(k); inv < 0 || inv > 1 {
						t.Fatalf("InvTop(%d) = %v out of [0,1] for %+v", k, inv, s)
					}
				}
			}
		}
	})
}
