package core

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// These tests pin the drop-accounting semantics: a miss on a full,
// fully-steady table (Steady == Size) has no eviction candidate, so
// the value is counted as dropped, held nowhere, and — having touched
// no entry — does not advance the periodic-clear clock.

func TestTNVDroppedOnFullySteadyTable(t *testing.T) {
	tb := NewTNV(TNVConfig{Size: 2, Steady: 2, ClearInterval: 0})
	tb.Add(1)
	tb.Add(2)
	tb.Add(1) // hit
	tb.Add(3) // miss on full fully-steady table: dropped
	tb.Add(4) // dropped
	if tb.Dropped() != 2 {
		t.Fatalf("Dropped %d, want 2", tb.Dropped())
	}
	if tb.Updates() != 5 {
		t.Fatalf("Updates %d, want 5 (dropped values still count)", tb.Updates())
	}
	if got := tb.Top(2); len(got) != 2 || got[0] != (TNVEntry{1, 2}) || got[1] != (TNVEntry{2, 1}) {
		t.Fatalf("entries %v, want [1:2 2:1]", got)
	}
	// InvTop divides by Updates, so drops depress the estimate exactly
	// like evicted counts.
	if inv := tb.InvTop(1); inv != 2.0/5.0 {
		t.Fatalf("InvTop(1) %v, want 0.4", inv)
	}

	// With an eviction candidate available (Steady < Size) nothing is
	// ever dropped.
	ev := NewTNV(TNVConfig{Size: 2, Steady: 1, ClearInterval: 0})
	for v := int64(1); v <= 5; v++ {
		ev.Add(v)
	}
	if ev.Dropped() != 0 {
		t.Fatalf("evicting table dropped %d, want 0", ev.Dropped())
	}
}

// TestDroppedDoesNotTickClearClock pins the clear-cadence fix: the
// clock counts updates that touched an entry, not raw updates. The old
// behavior ticked on every Add, so after the sequence below it would
// sit at 6 % 4 = 2; counting only the three touching updates it sits
// at 3.
func TestDroppedDoesNotTickClearClock(t *testing.T) {
	tb := NewTNV(TNVConfig{Size: 2, Steady: 2, ClearInterval: 4})
	for _, v := range []int64{1, 2, 3, 4, 5, 1} {
		tb.Add(v) // insert, insert, drop, drop, drop, hit
	}
	if tb.Dropped() != 3 {
		t.Fatalf("Dropped %d, want 3", tb.Dropped())
	}
	if tb.sinceClear != 3 {
		t.Fatalf("sinceClear %d, want 3 (per-update clock would sit at 2)", tb.sinceClear)
	}
	// The fourth touching update wraps the clock; with the table inside
	// its steady part the clear is a no-op and goes uncounted.
	tb.Add(2)
	if tb.sinceClear != 0 || tb.Clears() != 0 {
		t.Fatalf("after wrap: sinceClear %d clears %d, want 0 and 0", tb.sinceClear, tb.Clears())
	}
}

// TestObserveBatchMatchesObserve: delivering a value stream through
// ObserveBatch in arbitrary chunkings must leave a site byte-identical
// to per-value Observe calls — including last-value chains across
// batch boundaries, clear cadence, and drop counts.
func TestObserveBatchMatchesObserve(t *testing.T) {
	for _, cfg := range []TNVConfig{
		{Size: 4, Steady: 2, ClearInterval: 16}, // eviction + clearing
		{Size: 3, Steady: 3, ClearInterval: 8},  // fully steady: drops
	} {
		rng := rand.New(rand.NewSource(1))
		seq := make([]int64, 2000)
		for i := range seq {
			seq[i] = int64(rng.Intn(9)) // small domain: plenty of repeats and zeros
		}

		one := NewSiteStats(0, "s", cfg, true)
		for _, v := range seq {
			one.Observe(v)
		}
		batched := NewSiteStats(0, "s", cfg, true)
		for off := 0; off < len(seq); {
			n := 1 + rng.Intn(90) // odd chunk sizes, some past ValueBufCap
			if off+n > len(seq) {
				n = len(seq) - off
			}
			batched.ObserveBatch(seq[off : off+n])
			off += n
		}

		if a, b := siteState(one), siteState(batched); !reflect.DeepEqual(a, b) {
			t.Errorf("cfg %+v: batched state %+v != per-value state %+v", cfg, b, a)
		}
		for _, e := range one.Full.Top(one.Full.Distinct()) {
			if got := batched.Full.Count(e.Value); got != e.Count {
				t.Errorf("cfg %+v: full count of %d is %d, want %d", cfg, e.Value, got, e.Count)
			}
		}
	}
}

func droppedProfile(t *testing.T) *Profile {
	t.Helper()
	s := NewSiteStats(0, "s", TNVConfig{Size: 1, Steady: 1, ClearInterval: 0}, false)
	for _, v := range []int64{1, 1, 2, 3} {
		s.Observe(v)
	}
	if s.TNV.Dropped() != 2 {
		t.Fatalf("setup: dropped %d, want 2", s.TNV.Dropped())
	}
	return &Profile{Sites: []*SiteStats{s}, K: 1}
}

func TestRecordDroppedRoundTrip(t *testing.T) {
	rec := droppedProfile(t).Record("p", "i")
	if rec.Sites[0].Dropped != 2 {
		t.Fatalf("record dropped %d, want 2", rec.Sites[0].Dropped)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sites[0].Dropped != 2 {
		t.Fatalf("loaded dropped %d, want 2", back.Sites[0].Dropped)
	}

	// Merging shards sums the drop counts like the other counters.
	merged, err := MergeRecords(rec, back)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Sites[0].Dropped != 4 {
		t.Fatalf("merged dropped %d, want 4", merged.Sites[0].Dropped)
	}
}

func TestLoaderRejectsExcessDropped(t *testing.T) {
	rec := droppedProfile(t).Record("p", "i")
	// Exec 4, TNV holds 2: dropped may be at most 2. Claim 3.
	rec.Sites[0].Dropped = 3
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := ReadProfileRecord(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "dropped") {
		t.Fatalf("strict loader: got %v, want dropped-count error", err)
	}
	back, rep, err := ReadProfileRecordPolicy(bytes.NewReader(raw), RepairDrop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("repairing loader reported a clean load")
	}
	if got := back.Sites[0].Dropped; got != 2 {
		t.Fatalf("repaired dropped %d, want clamp to 2", got)
	}
}

func TestCheckpointDroppedRoundTrip(t *testing.T) {
	cfg := TNVConfig{Size: 1, Steady: 1, ClearInterval: 0}
	vp, err := NewValueProfiler(Options{TNV: cfg})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSiteStats(0, "s", cfg, false)
	for _, v := range []int64{1, 1, 2, 3} {
		s.Observe(v)
	}
	vp.sites[0] = s

	ck, err := CheckpointOf(vp, nil, "p", "i")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sites[0].TNV.Dropped != 2 {
		t.Fatalf("checkpoint dropped %d, want 2", ck.Sites[0].TNV.Dropped)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := restoreSite(&back.Sites[0], cfg)
	if !reflect.DeepEqual(siteState(restored), siteState(s)) {
		t.Fatalf("restored site %+v != original %+v", siteState(restored), siteState(s))
	}

	// Conservation is validated on load: a drop count that cannot fit
	// under Updates alongside the entry counts is rejected.
	ck.Sites[0].TNV.Dropped = 99
	buf.Reset()
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("got %v, want dropped-invariant error", err)
	}
}

// TestCheckpointVersion1StillLoads: a pre-drop-counter file (envelope
// version 1, no dropped fields) must load with drops restored as zero.
func TestCheckpointVersion1StillLoads(t *testing.T) {
	payload := []byte(`{"program":"p","input":"i","tnv":{"Size":1,"Steady":1,"ClearInterval":0},` +
		`"skipped":0,"sites":[{"pc":0,"name":"s","exec":2,"lvpHits":1,"zeros":0,"last":1,"hasLast":true,` +
		`"tnv":{"entries":[{"Value":1,"Count":2}],"updates":2,"sinceClear":0,"clears":0}}]}`)
	env := map[string]any{
		"magic":   "VPCKPT1",
		"version": 1,
		"crc32":   crc32.ChecksumIEEE(payload),
		"payload": json.RawMessage(payload),
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sites[0].TNV.Dropped != 0 {
		t.Fatalf("v1 file restored dropped %d, want 0", ck.Sites[0].TNV.Dropped)
	}
}
