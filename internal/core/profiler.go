package core

import (
	"fmt"
	"sort"

	"valueprof/internal/atom"
	"valueprof/internal/isa"
	"valueprof/internal/vm"
)

// Options configures a ValueProfiler.
type Options struct {
	// Filter selects which instructions to profile; nil profiles every
	// result-producing instruction (op.HasDest()). The paper's two main
	// configurations are all instructions and loads only (LoadsOnly).
	Filter func(isa.Inst) bool
	// TNV is the per-site table configuration.
	TNV TNVConfig
	// TrackFull additionally keeps exact profiles as ground truth.
	TrackFull bool
	// Convergent enables intelligent sampling; nil profiles every
	// execution of every selected instruction.
	Convergent *ConvergentConfig
	// Sampler supplies an alternative per-site sampling policy
	// (periodic, random, fixed bursts); ignored when Convergent is
	// set. Nil profiles full-time.
	Sampler SamplerFactory
	// Prune, when non-nil, vetoes individual pcs the caller has proven
	// uninteresting — typically statically-constant or unreachable
	// instructions (see internal/analysis). A pruned pc gets no site,
	// no TNV table, and no hook; the count lands in Profile.Pruned.
	// The type is a plain func so core needs no analysis dependency.
	Prune func(pc int, in isa.Inst) bool
	// AdaptiveBudget, when non-nil, allocates per-site sampling effort
	// from a static prediction: proved sites are skipped outright (no
	// site, no hook — counted in Profile.Pruned), likely-invariant
	// sites are down-sampled convergently, and uncertain sites get the
	// full budget. Mutually exclusive with Convergent and Sampler.
	AdaptiveBudget *AdaptivePlan
	// Unbatched forces the legacy closure-per-execution observation
	// path for full-time sites instead of batched value buffers. The
	// resulting profile is byte-identical either way (the differential
	// harness proves it); the switch exists for that proof and for the
	// before/after interpreter benchmarks.
	Unbatched bool
}

// SiteBudget is the per-site sampling effort an AdaptivePlan assigns.
type SiteBudget uint8

const (
	// BudgetFull profiles every execution of the site.
	BudgetFull SiteBudget = iota
	// BudgetSampled profiles the site under convergent sampling.
	BudgetSampled
	// BudgetSkip allocates nothing: no site, no TNV table, no hook.
	BudgetSkip
)

func (b SiteBudget) String() string {
	switch b {
	case BudgetFull:
		return "full"
	case BudgetSampled:
		return "sampled"
	case BudgetSkip:
		return "skip"
	}
	return fmt.Sprintf("budget(%d)", uint8(b))
}

// AdaptivePlan maps candidate sites to sampling budgets. The type is a
// plain struct of funcs and config so core needs no dependency on the
// static-analysis package that computes the predictions (see
// analysis.Predictions.Plan).
type AdaptivePlan struct {
	// Budget classifies each candidate site; nil assigns BudgetFull to
	// every site.
	Budget func(pc int, in isa.Inst) SiteBudget
	// Sampled configures the convergent sampler of BudgetSampled sites;
	// the zero value means DefaultConvergentConfig.
	Sampled ConvergentConfig
}

func (pl *AdaptivePlan) sampledConfig() ConvergentConfig {
	if pl.Sampled == (ConvergentConfig{}) {
		return DefaultConvergentConfig()
	}
	return pl.Sampled
}

// DefaultOptions profiles all result-producing instructions with the
// paper's TNV configuration, no sampling, no ground truth.
func DefaultOptions() Options {
	return Options{TNV: DefaultTNVConfig()}
}

// LoadsOnly is a Filter selecting load instructions, the paper's
// load-value profiling configuration.
func LoadsOnly(in isa.Inst) bool { return in.Op.Class() == isa.ClassLoad }

// ClassOnly returns a Filter selecting one instruction class.
func ClassOnly(c isa.Class) func(isa.Inst) bool {
	return func(in isa.Inst) bool { return in.Op.Class() == c }
}

// ValueProfiler is the ATOM tool that value-profiles instruction
// results. Create one per run with NewValueProfiler, pass it to
// atom.Run, then read Profile.
type ValueProfiler struct {
	opts  Options
	sites map[int]*SiteStats
	// seeded holds per-site state restored from a checkpoint (see
	// Seed); prepare adopts these instead of fresh stats so a resumed
	// run keeps accumulating into the restored tables.
	seeded map[int]*SiteStats
	// seedSkipped carries the run-wide skip total restored from a
	// legacy (pre-versioned) checkpoint that recorded no per-site skip
	// counters; Skipped() adds it to the per-site sum.
	seedSkipped uint64
	// Pruned counts candidate pcs Options.Prune or a BudgetSkip
	// allocation removed before any allocation happened.
	Pruned int
	// sampled marks the pcs the adaptive plan placed under convergent
	// sampling (BudgetSampled).
	sampled map[int]bool
	// bufs holds the per-site value buffers of batched sites (full-time
	// sites, and sampled sites whose sampler is batch-replayable). A
	// buffer persists across Instrument calls of a reused profiler so
	// carried-over values keep their order; FlushBuffers drains them.
	bufs map[int]*vm.ValueBuffer
	// freeBufs recycles value buffers across ResetFor generations.
	freeBufs []*vm.ValueBuffer
	// slab block-allocates the per-run site state (see newSite).
	slab siteSlab
	// runs counts Instrument calls. A profiler re-instrumented for
	// further runs of the same program keeps accumulating into its
	// site tables, yielding the profile of the concatenated run.
	runs int
}

// normalized fills option defaults and validates the result; shared by
// NewValueProfiler and ResetFor.
func (o Options) normalized() (Options, error) {
	if o.Filter == nil {
		o.Filter = func(in isa.Inst) bool { return in.Op.HasDest() }
	}
	if o.TNV.Size == 0 {
		o.TNV = DefaultTNVConfig()
	}
	if err := o.TNV.validate(); err != nil {
		return o, err
	}
	if o.Convergent != nil {
		if err := o.Convergent.Validate(); err != nil {
			return o, err
		}
	}
	if o.AdaptiveBudget != nil {
		if o.Convergent != nil || o.Sampler != nil {
			return o, fmt.Errorf("AdaptiveBudget is mutually exclusive with Convergent and Sampler")
		}
		cfg := o.AdaptiveBudget.sampledConfig()
		if err := cfg.Validate(); err != nil {
			return o, fmt.Errorf("AdaptiveBudget.Sampled: %w", err)
		}
	}
	return o, nil
}

// NewValueProfiler validates opts and creates the tool.
func NewValueProfiler(opts Options) (*ValueProfiler, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	return &ValueProfiler{
		opts:    opts,
		sites:   make(map[int]*SiteStats),
		sampled: make(map[int]bool),
		bufs:    make(map[int]*vm.ValueBuffer),
	}, nil
}

// ResetFor rewinds a profiler for reuse on a new job, revalidating and
// adopting opts. The accumulated sites are not retained — they belong
// to the Profile extracted for the previous job (callers read
// Profile() before resetting; unextracted buffered values are
// discarded with it) — but the maps and value-buffer allocations are
// recycled. A reset profiler is observably indistinguishable from
// NewValueProfiler(opts): fresh-vs-reused byte identity of profiles is
// pinned by internal/difftest. This is the reuse lifecycle entry point
// for internal/parallel's arena and internal/supervise retries.
func (p *ValueProfiler) ResetFor(opts Options) error {
	opts, err := opts.normalized()
	if err != nil {
		return err
	}
	clear(p.sites)
	clear(p.sampled)
	for pc, b := range p.bufs {
		b.Reset(nil) // park: drop pending values and the old site reference
		p.freeBufs = append(p.freeBufs, b)
		delete(p.bufs, pc)
	}
	p.seeded = nil
	p.seedSkipped = 0
	p.Pruned = 0
	p.runs = 0
	p.opts = opts
	// The slab is abandoned, not reused: its storage escaped into the
	// previous profile's sites.
	p.slab = siteSlab{}
	return nil
}

// Instrument implements atom.Tool: it attaches an after-instruction
// analysis routine to every selected instruction, as the paper's ATOM
// tool did ("each instruction can be profiled ... the destination
// register value is passed to the function which records the profiling
// information").
func (p *ValueProfiler) Instrument(ix *atom.Instrumenter) {
	p.runs++
	p.prepare(ix)
	factory := p.opts.Sampler
	if p.opts.Convergent != nil {
		cfg := *p.opts.Convergent
		factory = func() Sampler { return newConvState(&cfg) }
	}
	if p.opts.AdaptiveBudget != nil {
		// Per-site allocation: sampled sites share the plan's convergent
		// config, full-budget sites hook every execution.
		cfg := p.opts.AdaptiveBudget.sampledConfig()
		sampledFactory := func() Sampler { return newConvState(&cfg) }
		factory = nil
		for pc := range p.sites {
			if p.sampled[pc] {
				p.hook(ix, pc, sampledFactory())
			} else {
				p.hook(ix, pc, nil)
			}
		}
		return
	}
	for pc := range p.sites {
		if factory == nil {
			p.hook(ix, pc, nil)
			continue
		}
		p.hook(ix, pc, factory())
	}
}

// hook attaches the after-instruction analysis routine for one site,
// full-time when sampler is nil. Full-time sites get a batched value
// buffer (unless Options.Unbatched) — the VM pushes raw values and the
// site observes them in order at flush time. Sampled sites whose
// sampler is batch-replayable (BatchSampler) also batch: the flush
// replays the take/skip decisions over the buffered stream with the
// exact per-execution semantics. Only samplers with per-execution
// randomness keep the closure path, where the decision is a function
// of the exact execution at which it runs.
func (p *ValueProfiler) hook(ix *atom.Instrumenter, pc int, sampler Sampler) {
	site := p.sites[pc]
	if sampler == nil {
		if p.opts.Unbatched {
			ix.AddAfter(pc, func(ev *vm.Event) { site.Observe(ev.Value) })
			return
		}
		p.attachBuffered(ix, pc, site)
		return
	}
	if bs, ok := sampler.(BatchSampler); ok && !p.opts.Unbatched {
		p.attachBuffered(ix, pc, &sampledSink{site: site, sampler: bs})
		return
	}
	// The skip counter lives on the site: the hook closure touches
	// no profiler-level state, so hooks of profilers running on
	// pooled workers share nothing.
	ix.AddAfter(pc, func(ev *vm.Event) {
		if sampler.ShouldProfile(site) {
			site.Observe(ev.Value)
		} else {
			site.Skipped++
		}
	})
}

// attachBuffered wires pc's value stream into sink through a (possibly
// recycled) ValueBuffer. On a reused profiler the existing buffer may
// still target the previous Instrument call's sink (sampled sites get
// a fresh sampler per run); any carried-over values are drained
// through the old sink — they belong to the previous run — before the
// buffer is re-targeted.
func (p *ValueProfiler) attachBuffered(ix *atom.Instrumenter, pc int, sink vm.ValueSink) {
	b := p.bufs[pc]
	if b == nil {
		if n := len(p.freeBufs); n > 0 {
			b = p.freeBufs[n-1]
			p.freeBufs[n-1] = nil
			p.freeBufs = p.freeBufs[:n-1]
			b.Reset(sink)
		} else {
			b = vm.NewValueBufferSink(sink)
		}
		p.bufs[pc] = b
	} else {
		b.Flush()
		b.Reset(sink)
	}
	ix.AddAfterBuffered(pc, b)
}

// FlushBuffers drains every batched value buffer into its site. Every
// reader of accumulated site state must flush first — Profile and
// CheckpointOf do it themselves, which also covers salvaging partial
// state from a cancelled or killed run.
func (p *ValueProfiler) FlushBuffers() {
	for _, b := range p.bufs {
		b.Flush()
	}
}

// prepare creates the site table from the program without attaching
// hooks (also used by tests). Sites restored from a checkpoint — or
// accumulated by a previous run of a reused profiler — keep their
// state; sites the profiler has never seen start fresh.
func (p *ValueProfiler) prepare(ix *atom.Instrumenter) {
	first := p.runs <= 1
	ix.ForEachInst(p.opts.Filter, func(pc int, in isa.Inst) {
		if p.opts.Prune != nil && p.opts.Prune(pc, in) {
			if first {
				p.Pruned++
			}
			return
		}
		if plan := p.opts.AdaptiveBudget; plan != nil && plan.Budget != nil {
			switch plan.Budget(pc, in) {
			case BudgetSkip:
				if first {
					p.Pruned++
				}
				return
			case BudgetSampled:
				p.sampled[pc] = true
			}
		}
		if _, ok := p.sites[pc]; ok {
			return
		}
		if s, ok := p.seeded[pc]; ok {
			p.sites[pc] = s
			return
		}
		p.sites[pc] = p.newSite(pc, ix.Prog.SiteName(pc))
	})
}

// Skipped returns the executions samplers declined to profile, summed
// across sites (plus any run-wide total restored from a legacy
// checkpoint that lacked per-site counters).
func (p *ValueProfiler) Skipped() uint64 {
	n := p.seedSkipped
	for _, s := range p.sites {
		n += s.Skipped
	}
	for pc, s := range p.seeded {
		if _, adopted := p.sites[pc]; !adopted {
			n += s.Skipped
		}
	}
	return n
}

// Profile returns the collected results.
func (p *ValueProfiler) Profile() *Profile {
	p.FlushBuffers()
	sites := make([]*SiteStats, 0, len(p.sites))
	for _, s := range p.sites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].PC < sites[j].PC })
	return &Profile{Sites: sites, K: p.opts.TNV.Size, Skipped: p.Skipped(), Pruned: p.Pruned}
}

// Profile is the result of one profiling run.
type Profile struct {
	Sites []*SiteStats // sorted by PC
	K     int          // TNV width used for Top-N metrics
	// Skipped is the number of executions the convergent sampler did
	// not profile (0 for full-time profiling).
	Skipped uint64
	// Pruned is the number of candidate pcs static analysis removed
	// before the run (0 without Options.Prune).
	Pruned int
}

// Aggregate returns execution-weighted metrics over all sites.
func (pr *Profile) Aggregate() WeightedMetrics { return Aggregate(pr.Sites, pr.K) }

// Profiled returns the total number of profiled observations.
func (pr *Profile) Profiled() uint64 {
	var n uint64
	for _, s := range pr.Sites {
		n += s.Exec
	}
	return n
}

// DutyCycle returns profiled / (profiled + skipped): the fraction of
// selected-instruction executions that actually ran the expensive
// analysis path. Full-time profiling has duty cycle 1.
func (pr *Profile) DutyCycle() float64 {
	total := pr.Profiled() + pr.Skipped
	if total == 0 {
		return 0
	}
	return float64(pr.Profiled()) / float64(total)
}

// Site returns the stats for pc, or nil.
func (pr *Profile) Site(pc int) *SiteStats {
	i := sort.Search(len(pr.Sites), func(i int) bool { return pr.Sites[i].PC >= pc })
	if i < len(pr.Sites) && pr.Sites[i].PC == pc {
		return pr.Sites[i]
	}
	return nil
}

// TopSites returns the n most-executed sites, most executed first.
func (pr *Profile) TopSites(n int) []*SiteStats {
	out := append([]*SiteStats(nil), pr.Sites...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exec != out[j].Exec {
			return out[i].Exec > out[j].Exec
		}
		return out[i].PC < out[j].PC
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// CountByClass returns how many profiled sites fall in each
// invariance class, and the execution-weighted fraction of each.
func (pr *Profile) CountByClass(th ClassifyThresholds) (counts map[Class]int, execFrac map[Class]float64) {
	counts = map[Class]int{}
	execFrac = map[Class]float64{}
	var total float64
	for _, s := range pr.Sites {
		if s.Exec == 0 {
			continue
		}
		c := s.Classify(th)
		counts[c]++
		execFrac[c] += float64(s.Exec)
		total += float64(s.Exec)
	}
	if total > 0 {
		for c := range execFrac {
			execFrac[c] /= total
		}
	}
	return counts, execFrac
}

// String summarizes the profile.
func (pr *Profile) String() string {
	m := pr.Aggregate()
	return fmt.Sprintf("profile: sites=%d execs=%d LVP=%.3f InvTop1=%.3f InvTop%d=%.3f zero=%.3f duty=%.3f",
		m.Sites, m.Execs, m.LVP, m.InvTop1, pr.K, m.InvTopN, m.PctZero, pr.DutyCycle())
}
