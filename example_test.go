package valueprof_test

import (
	"fmt"
	"log"

	valueprof "valueprof"
)

// ExampleCompileMiniC compiles and runs a MiniC program.
func ExampleCompileMiniC() {
	prog, err := valueprof.CompileMiniC(`
func main() {
    var i; var s = 0;
    for (i = 1; i <= 10; i = i + 1) { s = s + i; }
    putint(s);
}
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := valueprof.Execute(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Output)
	// Output: 55
}

// ExampleNewTNV shows the Top-N-Value table that is the heart of the
// paper: it finds a site's dominant value and estimates its invariance.
func ExampleNewTNV() {
	tab := valueprof.NewTNV(valueprof.DefaultTNVConfig())
	for i := 0; i < 100; i++ {
		if i%10 == 0 {
			tab.Add(int64(i)) // occasional noise
		} else {
			tab.Add(42) // the semi-invariant value
		}
	}
	v, count, _ := tab.TopValue()
	fmt.Printf("top value %d seen %d times; Inv-Top(1) = %.2f\n", v, count, tab.InvTop(1))
	// Output: top value 42 seen 90 times; Inv-Top(1) = 0.90
}

// ExampleNewValueProfiler profiles every result-producing instruction
// of a program and reports the most invariant hot site.
func ExampleNewValueProfiler() {
	prog, err := valueprof.CompileMiniC(`
int scale = 7;
func main() {
    var i; var s = 0;
    for (i = 0; i < 1000; i = i + 1) { s = s + i * scale; }
    putint(s);
}
`)
	if err != nil {
		log.Fatal(err)
	}
	vp, err := valueprof.NewValueProfiler(valueprof.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := valueprof.Run(prog, nil, vp); err != nil {
		log.Fatal(err)
	}
	// The load of the global `scale` is fully invariant: find it.
	for _, s := range vp.Profile().Sites {
		if v, _, ok := s.TNV.TopValue(); ok && s.InvTop(1) == 1.0 && v == 7 && s.Exec == 1000 {
			fmt.Printf("an invariant site always produces %d over %d executions\n", v, s.Exec)
			break
		}
	}
	// Output: an invariant site always produces 7 over 1000 executions
}

// ExampleSpecialize folds a semi-invariant argument into a guarded
// specialized procedure body and verifies the behaviour is unchanged.
func ExampleSpecialize() {
	prog, err := valueprof.CompileMiniC(`
func poly(k, x) { return k * x * x + k * x + k; }
func main() {
    var i; var s = 0;
    for (i = 0; i < 100; i = i + 1) { s = s + poly(3, i); }
    putint(s);
}
`)
	if err != nil {
		log.Fatal(err)
	}
	base, _ := valueprof.Execute(prog, nil)
	spec, info, err := valueprof.Specialize(prog, "poly", 1 /* a0 */, 3)
	if err != nil {
		log.Fatal(err)
	}
	got, _ := valueprof.Execute(spec, nil)
	fmt.Printf("outputs equal: %v; folded: %v; saved cycles: %v\n",
		got.Output == base.Output, info.Folded > 0, base.Cycles > got.Cycles)
	// Output: outputs equal: true; folded: true; saved cycles: true
}
