# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test test-short cover bench bench-smoke bench-parallel exp exp-quick fmt vet lint clean ci fuzz-smoke

all: build vet lint test

# What CI runs: static checks, full build, race-enabled tests, a short
# fuzz pass over the parsers that face untrusted input, and a
# one-iteration benchmark smoke (every exhibit still regenerates, and
# the serial-vs-parallel suite comparison still cross-checks).
ci: vet lint build
	go test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) bench-smoke
	$(MAKE) bench-parallel

# Repo-specific static checks: the atomicio vet pass over command code
# (no raw os.Create/os.WriteFile in cmd/ — see internal/lint), the VRISC
# bytecode verifier over every workload and the assembly examples, and
# staticcheck when it is installed (the toolchain image may not have it;
# it must not be a hard dependency).
lint:
	go run ./internal/lint/vvet
	go run ./cmd/vlint -all
	go run ./cmd/vlint examples/asm/sum.s
	go run ./cmd/vlint examples/asm/warnings.s
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

fuzz-smoke:
	go test ./internal/core -run='^$$' -fuzz=FuzzReadProfileRecord -fuzztime=10s
	go test ./internal/asm -run='^$$' -fuzz=FuzzAssemble -fuzztime=10s

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

cover:
	go test -cover ./...

# Regenerate every paper table/figure (full parameter sweeps, ~60 s).
exp:
	go run ./cmd/vexp

exp-quick:
	go run ./cmd/vexp -quick

# One testing.B benchmark per exhibit plus primitive microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot in the harness
# without the full measurement cost.
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# Record the serial-vs-parallel suite baseline (BENCH_parallel.json).
bench-parallel:
	go run ./cmd/vexp -bench-parallel BENCH_parallel.json

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
