# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test test-short cover cover-gate bench bench-smoke bench-parallel bench-vm bench-vm-check bench-diff race-bench race-reuse exp exp-quick fmt vet lint clean ci fuzz-smoke difftest chaos-smoke predict-sweep serve-smoke

# Coverage floors for the packages the correctness argument rests on.
# Raise them when coverage genuinely improves; lowering one is a
# reviewable decision, not a CI tweak.
COVER_MIN_CORE     := 88
COVER_MIN_PARALLEL := 85
COVER_MIN_ANALYSIS := 80
COVER_MIN_SERVE    := 80

all: build vet lint test

# What CI runs: static checks, full build, race-enabled tests, the
# coverage gate, a short fuzz pass over the parsers that face
# untrusted input, the 500-seed differential-testing sweep, the
# pool-level chaos sweep, the batched-buffer race benchmark, the
# pooled-reuse chaos smoke, a one-iteration benchmark smoke (every
# exhibit still regenerates, and the serial-vs-parallel suite
# comparison still cross-checks), and the VM hot-loop regression gate
# (ratios and hooked-run allocation count) against the recorded
# baseline.
ci: vet lint build
	go test -race ./...
	$(MAKE) cover-gate
	$(MAKE) serve-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) difftest
	$(MAKE) predict-sweep
	$(MAKE) chaos-smoke
	$(MAKE) race-bench
	$(MAKE) race-reuse
	$(MAKE) bench-smoke
	$(MAKE) bench-parallel
	$(MAKE) bench-vm-check

# Repo-specific static checks: the custom vet pass over command code,
# the analysis package, the worker pool, and the serve daemon (no raw
# os.Create/os.WriteFile, no ranging analysis fact tables straight
# into reports, no per-job VM/profiler allocation outside the arena,
# no os.Exit in serve handlers — see internal/lint), the VRISC
# bytecode verifier over every workload and the assembly examples, and
# staticcheck when it is installed (the toolchain image may not have
# it; it must not be a hard dependency).
lint:
	go run ./internal/lint/vvet cmd internal/analysis internal/parallel internal/serve
	go run ./cmd/vlint -all
	go run ./cmd/vlint examples/asm/sum.s
	go run ./cmd/vlint examples/asm/warnings.s
	go run ./cmd/vlint examples/asm/deadbranch.s
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

fuzz-smoke:
	go test ./internal/core -run='^$$' -fuzz=FuzzReadProfileRecord -fuzztime=30s
	go test ./internal/asm -run='^$$' -fuzz=FuzzAssemble -fuzztime=30s

# The differential-testing sweep: 500 generated programs checked
# against the naive reference oracle (see docs/difftest.md). Any
# divergence fails the build and leaves a shrunk repro in
# internal/difftest/testdata/corpus.
difftest:
	go run ./cmd/vfuzz -seeds 500

# The predicted-invariance soundness sweep: 300 programs from the
# interval-edge generator (wraparound arithmetic, non-unit strides,
# equality-range branches), each profiled at full fidelity with every
# proved-tier claim of analysis.Predict checked against the recorded
# profile. One contradiction fails the build — the proved tier is the
# adaptive hook budget's license to drop instrumentation entirely.
predict-sweep:
	go run ./cmd/vfuzz -predict -seeds 300

# The pool-level chaos sweep: 200 seeds of supervised jobs under
# injected kills, stalls, and checkpoint corruption, run with the race
# detector on. Asserts zero hangs (each seed is wall-clock-capped by
# the vfuzz watchdog — generous because the race detector slows the
# guest severalfold), zero corrupt merged profiles, and byte-identical
# retried successes (see docs/robustness.md).
chaos-smoke:
	go run -race ./cmd/vfuzz -chaos -seeds 200 -timecap 60s

# Fail if statement coverage of the correctness-critical packages
# falls below the recorded floor.
cover-gate:
	@out=$$(go test -cover ./internal/core ./internal/parallel ./internal/analysis ./internal/serve) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | awk -v core=$(COVER_MIN_CORE) -v par=$(COVER_MIN_PARALLEL) -v ana=$(COVER_MIN_ANALYSIS) -v srv=$(COVER_MIN_SERVE) ' \
		/valueprof\/internal\/core/     { seen++; if ($$5+0 < core) { printf "cover-gate: internal/core %s < %d%%\n", $$5, core; bad=1 } } \
		/valueprof\/internal\/parallel/ { seen++; if ($$5+0 < par)  { printf "cover-gate: internal/parallel %s < %d%%\n", $$5, par; bad=1 } } \
		/valueprof\/internal\/analysis/ { seen++; if ($$5+0 < ana)  { printf "cover-gate: internal/analysis %s < %d%%\n", $$5, ana; bad=1 } } \
		/valueprof\/internal\/serve/    { seen++; if ($$5+0 < srv)  { printf "cover-gate: internal/serve %s < %d%%\n", $$5, srv; bad=1 } } \
		END { if (seen != 4) { print "cover-gate: expected 4 coverage lines, saw " seen; bad=1 }; exit bad }'

# The daemon acceptance suite under the race detector: golden endpoint
# contracts, seeded restart-survival chaos, fairness/starvation bounds,
# and the two-client end-to-end scenario (see docs/serve.md).
serve-smoke:
	go test -race -count=1 ./internal/serve

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

cover:
	go test -cover ./...

# Regenerate every paper table/figure (full parameter sweeps, ~60 s).
exp:
	go run ./cmd/vexp

exp-quick:
	go run ./cmd/vexp -quick

# One testing.B benchmark per exhibit plus primitive microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot in the harness
# without the full measurement cost.
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# Record the serial-vs-parallel suite baseline (BENCH_parallel.json).
bench-parallel:
	go run ./cmd/vexp -bench-parallel BENCH_parallel.json

# Record the interpreter hot-loop baseline (BENCH_vm.json): per-opcode
# dispatch, hooked vs unhooked, batched vs legacy value delivery.
bench-vm:
	go run ./cmd/vexp -bench-vm BENCH_vm.json

# Gate the machine-independent hot-loop ratios (hook overhead, batched
# speedup) and the hooked-run allocation count against the recorded
# baseline with ±10% tolerance.
bench-vm-check:
	go run ./cmd/vexp -bench-vm-check BENCH_vm.json

# Compare two recorded VM baselines without re-measuring: per-metric
# and per-op ratio deltas plus the same ±10% gate bench-vm-check
# applies. Usage: make bench-diff OLD=old.json [NEW=new.json]
OLD ?= BENCH_vm.json
NEW ?= BENCH_vm.json
bench-diff:
	go run ./cmd/vexp -bench-diff $(OLD) $(NEW)

# The batched value buffers under pool-level chaos with the race
# detector on: proves no flush is lost or duplicated when runs are
# killed mid-buffer and salvaged (see docs/perf.md).
race-bench:
	go test -race -run='^$$' -bench=BenchmarkPoolChaosBatched -benchtime=2x ./internal/difftest

# Arena reuse under chaos with the race detector on: wide pools
# recycling VMs and profilers across killed, stalled, and
# checkpoint-corrupted attempts (see docs/perf.md, Campaign 2).
race-reuse:
	go test -race -run=TestPooledReuseChaos ./internal/difftest

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
