# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test test-short cover bench exp exp-quick fmt vet clean ci fuzz-smoke

all: build vet test

# What CI runs: static checks, full build, race-enabled tests, and a
# short fuzz pass over the parsers that face untrusted input.
ci: vet build
	go test -race ./...
	$(MAKE) fuzz-smoke

fuzz-smoke:
	go test ./internal/core -run='^$$' -fuzz=FuzzReadProfileRecord -fuzztime=10s
	go test ./internal/asm -run='^$$' -fuzz=FuzzAssemble -fuzztime=10s

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

cover:
	go test -cover ./...

# Regenerate every paper table/figure (full parameter sweeps, ~60 s).
exp:
	go run ./cmd/vexp

exp-quick:
	go run ./cmd/vexp -quick

# One testing.B benchmark per exhibit plus primitive microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
