# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test test-short cover bench exp exp-quick fmt vet clean

all: build vet test

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

cover:
	go test -cover ./...

# Regenerate every paper table/figure (full parameter sweeps, ~60 s).
exp:
	go run ./cmd/vexp

exp-quick:
	go run ./cmd/vexp -quick

# One testing.B benchmark per exhibit plus primitive microbenchmarks.
bench:
	go test -bench=. -benchmem ./...

fmt:
	gofmt -w .

vet:
	go vet ./...

clean:
	go clean ./...
