// Specialize: the full Chapter X pipeline — parameter-profile a
// program, discover a semi-invariant argument, specialize the procedure
// on its dominant value, and measure the guarded-dispatch speedup.
package main

import (
	"fmt"
	"log"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/isa"
	"valueprof/internal/minic"
	"valueprof/internal/paramprof"
	"valueprof/internal/specialize"
	"valueprof/internal/vm"
)

// A table-driven checksum kernel: the `width` argument is 32 for almost
// every call (a semi-invariant the programmer may not even know about).
const src = `
int data[4096];
func mix(width, x) {
    var mask = (1 << width) - 1;
    var r = x & mask;
    r = (r * 2654435761) & mask;
    r = r ^ (r >> (width / 2));
    if (width < 16) { r = r + 7; }
    return r & mask;
}
func main() {
    var i; var acc = 0;
    for (i = 0; i < 4096; i = i + 1) { data[i] = i * 2654435761; }
    for (i = 0; i < 40000; i = i + 1) {
        var w = 32;
        if (i % 100 == 99) { w = 8 + (i % 3) * 8; }
        acc = (acc + mix(w, data[i % 4096])) & 0xFFFFFF;
    }
    putint(acc);
}
`

func main() {
	prog, err := minic.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	base, err := vm.Execute(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: output %s, %d cycles\n", base.Output, base.Cycles)

	// Step 1: parameter profiling discovers that mix's first argument
	// is semi-invariant.
	pp := paramprof.New(paramprof.Options{
		TNV:   core.DefaultTNVConfig(),
		Arity: map[string]int{"mix": 2},
		Procs: []string{"mix"},
	})
	if _, err := atom.Run(prog, nil, false, pp); err != nil {
		log.Fatal(err)
	}
	mix := pp.Report().Proc("mix")
	inv := mix.Args[0].InvTop(1)
	top, count, _ := mix.Args[0].TNV.TopValue()
	fmt.Printf("profile: mix called %d times; arg0 = %d in %.1f%% of calls (%d hits)\n",
		mix.Calls, top, 100*inv, count)

	if inv < 0.5 {
		log.Fatal("argument not semi-invariant; nothing to specialize")
	}

	// Step 2: specialize mix on width = the dominant value.
	spec, info, err := specialize.Specialize(prog, "mix", isa.RegA0, top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized: body %d -> %d insts (%d folded, %d branches resolved, %d removed)\n",
		info.OrigSize, info.SpecSize, info.Folded, info.Branches, info.Removed)

	// Step 3: run the specialized program and compare.
	got, err := vm.Execute(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	if got.Output != base.Output {
		log.Fatalf("output changed: %q vs %q", got.Output, base.Output)
	}
	fmt.Printf("specialized: output %s (identical), %d cycles\n", got.Output, got.Cycles)
	fmt.Printf("speedup: %.3fx\n", float64(base.Cycles)/float64(got.Cycles))
}
