// Memlocations: profile the values written to each memory location of
// a workload (the thesis's second profiled entity) and the argument
// tuples of its hot procedures, then print the specialization and
// memoization candidates both profiles expose.
package main

import (
	"fmt"
	"log"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/memprof"
	"valueprof/internal/paramprof"
	"valueprof/internal/textual"
	"valueprof/internal/workloads"
)

func main() {
	w, err := workloads.ByName("dictv")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		log.Fatal(err)
	}

	// Memory-location profile (stores).
	mp := memprof.New(memprof.Options{TNV: core.DefaultTNVConfig()})
	// Parameter profile of the hash-table operations, in the same run.
	pp := paramprof.New(paramprof.Options{
		TNV:   core.DefaultTNVConfig(),
		Arity: map[string]int{"hash": 1, "find": 1, "insert": 2, "remove": 1},
	})
	if _, err := atom.Run(prog, w.Test.Args, false, mp, pp); err != nil {
		log.Fatal(err)
	}

	rep := mp.Report()
	all := rep.Aggregate(nil)
	fmt.Printf("dictv/test wrote %d distinct locations (%d stores)\n", len(rep.Locations), all.Execs)
	byLoc, byAccess := rep.InvariantFraction(0.9)
	fmt.Printf("≥90%%-single-valued: %.1f%% of locations, %.1f%% of accesses\n\n", 100*byLoc, 100*byAccess)

	tab := textual.New("hottest written locations", "addr", "region", "writes", "InvTop1", "top value")
	for _, l := range rep.TopLocations(8) {
		v, c, _ := l.Stats.TNV.TopValue()
		tab.Row(fmt.Sprintf("%#x", l.Addr), l.Region.String(), l.Writes,
			l.Stats.InvTop(1), fmt.Sprintf("%d (%d times)", v, c))
	}
	fmt.Print(tab.String())

	fmt.Println()
	ptab := textual.New("procedure parameters", "proc", "calls", "arg0-inv", "tuple-inv")
	for _, p := range pp.Report().Procs {
		if len(p.Args) == 0 {
			continue
		}
		ptab.Row(p.Name, p.Calls, p.Args[0].InvTop(1), p.AllArgsInvariance())
	}
	fmt.Print(ptab.String())

	cands := pp.Report().Candidates(100, 0.3)
	fmt.Printf("\nmemoization/specialization candidates (tuple-inv ≥ 0.3, ≥100 calls): %d\n", len(cands))
	for _, c := range cands {
		fmt.Printf("  %s (%.1f%% recurring tuples over %d calls)\n",
			c.Name, 100*c.AllArgsInvariance(), c.Calls)
	}
}
