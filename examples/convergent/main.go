// Convergent: the paper's overhead/accuracy trade-off in action — full
// profiling vs the convergent sampler on a real workload — followed by
// trace-based offline analysis: record the value stream once, then
// evaluate several TNV configurations against the identical stream.
package main

import (
	"bytes"
	"fmt"
	"log"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/textual"
	"valueprof/internal/trace"
	"valueprof/internal/workloads"
)

func main() {
	w, err := workloads.ByName("lifegrid")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		log.Fatal(err)
	}

	// Full-time profiling: the ground truth, at full cost.
	full, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig(), TrackFull: true})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := atom.Run(prog, w.Test.Args, false, full); err != nil {
		log.Fatal(err)
	}
	fp := full.Profile()

	// Convergent profiling at three criteria.
	tab := textual.New("lifegrid/test: convergent sampling vs full-time profiling",
		"config", "profiled", "skipped", "duty", "InvTop1", "max-site-err")
	fm := fp.Aggregate()
	tab.Row("full-time", fp.Profiled(), 0, 1.0, fm.InvTop1, 0.0)
	for _, eps := range []float64{0.01, 0.02, 0.05} {
		cfg := core.DefaultConvergentConfig()
		cfg.Epsilon = eps
		vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig(), Convergent: &cfg})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := atom.Run(prog, w.Test.Args, false, vp); err != nil {
			log.Fatal(err)
		}
		pr := vp.Profile()
		maxErr := 0.0
		for _, s := range pr.Sites {
			truth := fp.Site(s.PC)
			if truth == nil || truth.Exec < 1000 || s.Exec == 0 {
				continue
			}
			if e := abs(truth.InvAll(1) - s.InvTop(1)); e > maxErr {
				maxErr = e
			}
		}
		m := pr.Aggregate()
		tab.Row(fmt.Sprintf("convergent eps=%.0f%%", 100*eps),
			pr.Profiled(), pr.Skipped, pr.DutyCycle(), m.InvTop1, maxErr)
	}
	fmt.Print(tab.String())

	// Trace once, analyze many times.
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := atom.Run(prog, w.Test.Args, false, trace.NewCollector(tw, core.LoadsOnly)); err != nil {
		log.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d load events in %d bytes (%.2f bytes/event)\n",
		tw.Count(), buf.Len(), float64(buf.Len())/float64(tw.Count()))

	data := buf.Bytes()
	ttab := textual.New("offline TNV ablation over one recorded trace",
		"TNV config", "sites", "weighted InvTop1")
	for _, cfg := range []struct {
		name string
		tnv  core.TNVConfig
	}{
		{"2 entries", core.TNVConfig{Size: 2, Steady: 1, ClearInterval: 2000}},
		{"10 entries (paper)", core.DefaultTNVConfig()},
		{"16 entries", core.TNVConfig{Size: 16, Steady: 8, ClearInterval: 2000}},
	} {
		rd, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		sites, err := trace.ProfileTrace(rd, cfg.tnv, false)
		if err != nil {
			log.Fatal(err)
		}
		var list []*core.SiteStats
		for _, s := range sites {
			list = append(list, s)
		}
		m := core.Aggregate(list, cfg.tnv.Size)
		ttab.Row(cfg.name, m.Sites, m.InvTop1)
	}
	fmt.Print(ttab.String())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
