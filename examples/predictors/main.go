// Predictors: drive the value-predictor zoo (last-value, stride,
// two-level, hybrids) over a real workload's dynamic value stream, then
// show how profile-guided filtering (predict only instructions the
// value profile marks predictable) trades coverage for accuracy.
package main

import (
	"fmt"
	"log"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/textual"
	"valueprof/internal/vpred"
	"valueprof/internal/workloads"
)

func main() {
	w, err := workloads.ByName("bytecode")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Compile()
	if err != nil {
		log.Fatal(err)
	}

	// Head-to-head predictor comparison.
	ev := vpred.NewEvaluator(vpred.StandardSuite(12)...)
	if _, err := atom.Run(prog, w.Test.Args, false, ev); err != nil {
		log.Fatal(err)
	}
	tab := textual.New("predictors on bytecode/test (all result-producing instructions)",
		"predictor", "attempts", "hit-rate", "accuracy", "miss-rate")
	for _, s := range vpred.SortedByHitRate(ev.Results()) {
		tab.Row(s.Name, s.Attempts, s.HitRate(), s.Accuracy(), s.MissRate())
	}
	fmt.Print(tab.String())

	// Profile pass: classify instructions by invariance/LVP.
	vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := atom.Run(prog, w.Test.Args, false, vp); err != nil {
		log.Fatal(err)
	}

	// Filtered vs unfiltered last-value prediction.
	unfiltered := vpred.NewEvaluator(vpred.NewLVP(12))
	if _, err := atom.Run(prog, w.Test.Args, false, unfiltered); err != nil {
		log.Fatal(err)
	}
	filtered := vpred.NewEvaluator(vpred.NewLVP(12))
	filtered.PredictPC = vpred.FilterFromProfile(vp.Profile(), 0.7)
	if _, err := atom.Run(prog, w.Test.Args, false, filtered); err != nil {
		log.Fatal(err)
	}
	u, f := unfiltered.Results()[0], filtered.Results()[0]
	fmt.Println()
	ft := textual.New("profile-guided filtering of LVP (threshold 0.7)",
		"variant", "attempts", "accuracy", "misses")
	ft.Row("unfiltered", u.Attempts, u.Accuracy(), u.Misses)
	ft.Row("profile-filtered", f.Attempts, f.Accuracy(), f.Misses)
	fmt.Print(ft.String())
	fmt.Printf("\nfiltering kept %.1f%% of attempts, cut misses by %.1f%%, accuracy %+.3f\n",
		100*float64(f.Attempts)/float64(u.Attempts),
		100*(1-float64(f.Misses)/float64(u.Misses)),
		f.Accuracy()-u.Accuracy())
}
