; deadbranch.s — a verifier-clean program with a branch arm the
; interval analysis proves can never be taken: t0 is the constant 3,
; so the cmplt against zero is always 0 and the bne never branches.
; The "neg:" arm is CFG-reachable (it is a branch target), so only the
; value-range pass sees that it is dead. vlint always warns; -strict
; fails the lint:
;
;   go run ./cmd/vlint examples/asm/deadbranch.s          ; exit 0, 1 warning
;   go run ./cmd/vlint -strict examples/asm/deadbranch.s  ; exit 1
        .text
        .proc main
main:   addi t0, zero, 3
        cmplt t1, t0, zero      ; 3 < 0 is always false
        bne  t1, neg            ; dead taken arm
        addi a0, zero, 0
        syscall exit
neg:    addi a0, zero, 1        ; statically unreachable
        syscall exit
        .endproc
