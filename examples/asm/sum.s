; sum.s — reads integers from the input stream until EOF (getint
; returns 0) and prints their running total. A minimal well-formed
; VRISC program: vlint verifies it with zero diagnostics, and
; `vlint -facts` proves the loop bound setup constant.
;
;   go run ./cmd/vasm examples/asm/sum.s -o sum.vx
;   go run ./cmd/vlint examples/asm/sum.s
        .text
        .proc main
main:   addi t0, zero, 0        ; running total
loop:   syscall getint          ; v0 = next integer, 0 at EOF
        beq  v0, done
        add  t0, t0, v0
        br   loop
done:   add  a0, t0, zero
        syscall putint
        addi a0, zero, 10
        syscall putchar         ; trailing newline
        addi a0, zero, 0
        syscall exit
        .endproc
