; warnings.s — a well-formed program that still trips every verifier
; *warning* rule: an unreachable block, a use of an uninitialized
; temporary, and a procedure that returns with the stack pointer
; displaced. vlint exits 0 on it (warnings only) but -strict fails it:
;
;   go run ./cmd/vlint examples/asm/warnings.s          ; exit 0, 3 warnings
;   go run ./cmd/vlint -strict examples/asm/warnings.s  ; exit 1
        .text
        .proc main
main:   add  t1, t0, t0         ; warning: t0 never written (use-before-def)
        jsr  leaky
        addi a0, zero, 0
        syscall exit
dead:   addi t2, zero, 1        ; warning: unreachable
        br   dead
        .endproc

        .proc leaky
leaky:  addi sp, sp, -16        ; warning at ret: sp not restored
        ret
        .endproc
