// Quickstart: compile a small program, value-profile every
// result-producing instruction, and read the TNV tables — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/minic"
)

const src = `
int limit = 100;
func classify(x) {
    if (x < limit) { return 0; }
    if (x < 2 * limit) { return 1; }
    return 2;
}
func main() {
    var i; var counts0 = 0; var counts1 = 0; var counts2 = 0;
    for (i = 0; i < 5000; i = i + 1) {
        var c = classify((i * 7) % 260);
        if (c == 0) { counts0 = counts0 + 1; }
        if (c == 1) { counts1 = counts1 + 1; }
        if (c == 2) { counts2 = counts2 + 1; }
    }
    putint(counts0); putchar(' ');
    putint(counts1); putchar(' ');
    putint(counts2);
}
`

func main() {
	// 1. Compile MiniC to a VRISC program.
	prog, err := minic.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a value profiler: a 10-entry TNV table per instruction,
	// the paper's default configuration.
	vp, err := core.NewValueProfiler(core.Options{TNV: core.DefaultTNVConfig()})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Instrument and run (ATOM-style).
	res, err := atom.Run(prog, nil, false, vp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %s\n", res.Output)

	// 4. Read the profile.
	profile := vp.Profile()
	m := profile.Aggregate()
	fmt.Printf("profiled %d sites over %d executions\n", m.Sites, m.Execs)
	fmt.Printf("weighted LVP %.3f, Inv-Top(1) %.3f, %%zero %.3f\n\n", m.LVP, m.InvTop1, m.PctZero)

	th := core.DefaultThresholds()
	fmt.Println("hottest sites:")
	for _, s := range profile.TopSites(8) {
		fmt.Printf("  %-12s %-22s execs=%-6d inv=%.3f  %-14s TNV: %s\n",
			s.Name, prog.Code[s.PC].String(), s.Exec, s.InvTop(1),
			s.Classify(th), s.TNV.String())
	}

	// 5. The load of the semi-invariant global `limit` shows up as a
	// fully invariant site; find it.
	for _, s := range profile.Sites {
		if v, _, ok := s.TNV.TopValue(); ok && v == 100 && s.InvTop(1) == 1.0 && s.Exec > 4000 {
			fmt.Printf("\nfound the invariant global load at %s: always %d over %d executions\n",
				s.Name, v, s.Exec)
			break
		}
	}
}
