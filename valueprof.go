// Package valueprof is a from-scratch reproduction of "Value Profiling"
// (Calder, Feller, Eustace, MICRO-30 1997; extended as Feller's UCSD
// thesis "Value Profiling for Instructions and Memory Locations",
// TR CS98-581).
//
// It provides, as one coherent toolkit:
//
//   - a 64-bit RISC substrate (VRISC): ISA, assembler, MiniC compiler,
//     and a cycle-costed interpreter with instrumentation hooks;
//   - an ATOM-like instrumentation layer for walking a program's
//     procedures/blocks/instructions and attaching analysis routines;
//   - the paper's contribution: Top-N-Value tables, the invariance /
//     LVP / %zero / Diff(L/I) metrics, full-profile ground truth, and
//     convergent (intelligent) sampling;
//   - the profiled-entity extensions (memory locations, procedure
//     parameters) and the downstream uses the paper motivates
//     (code specialization, value-predictor filtering, memoization);
//   - the benchmark suite and the experiment harness that regenerates
//     each of the paper's tables and figures (see DESIGN.md and
//     EXPERIMENTS.md).
//
// This package is the public facade: it re-exports the stable surface
// of the internal packages so downstream users have a single import.
//
//	prog, _ := valueprof.CompileMiniC(src)
//	vp, _ := valueprof.NewValueProfiler(valueprof.DefaultOptions())
//	res, _ := valueprof.Run(prog, input, vp)
//	profile := vp.Profile()
package valueprof

import (
	"context"
	"io"
	"runtime"

	"valueprof/internal/asm"
	"valueprof/internal/atom"
	"valueprof/internal/core"
	"valueprof/internal/depprof"
	"valueprof/internal/difftest"
	"valueprof/internal/experiments"
	"valueprof/internal/isa"
	"valueprof/internal/memprof"
	"valueprof/internal/minic"
	"valueprof/internal/parallel"
	"valueprof/internal/paramprof"
	"valueprof/internal/procprof"
	"valueprof/internal/progen"
	"valueprof/internal/program"
	"valueprof/internal/regprof"
	"valueprof/internal/specialize"
	"valueprof/internal/supervise"
	"valueprof/internal/trace"
	"valueprof/internal/trivprof"
	"valueprof/internal/vm"
	"valueprof/internal/vpred"
	"valueprof/internal/workloads"
)

// ---- substrate ----

// Program is a loaded VRISC executable.
type Program = program.Program

// Proc is a procedure within a Program.
type Proc = program.Proc

// VM interprets a Program.
type VM = vm.VM

// RunResult summarizes one execution.
type RunResult = vm.Result

// Assemble builds a Program from VRISC assembly text.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// CompileMiniC builds a Program from MiniC source.
func CompileMiniC(src string) (*Program, error) { return minic.Compile(src) }

// Execute runs a program uninstrumented.
func Execute(p *Program, input []int64) (*RunResult, error) { return vm.Execute(p, input) }

// ---- instrumentation ----

// Tool is an ATOM-style instrumentation tool.
type Tool = atom.Tool

// Instrumenter exposes a program's structure to tools.
type Instrumenter = atom.Instrumenter

// Run instruments p with the given tools and executes it.
func Run(p *Program, input []int64, tools ...Tool) (*RunResult, error) {
	return atom.Run(p, input, false, tools...)
}

// ---- the paper's core ----

// TNVConfig configures a Top-N-Value table.
type TNVConfig = core.TNVConfig

// TNVTable is the paper's Top-N-Value table.
type TNVTable = core.TNVTable

// TNVEntry is one (value, count) pair.
type TNVEntry = core.TNVEntry

// FullProfile is the exact (ground-truth) value profile.
type FullProfile = core.FullProfile

// SiteStats is the per-site profile (TNV + LVP + zeros).
type SiteStats = core.SiteStats

// Profile is a completed value-profiling run.
type Profile = core.Profile

// Options configures a ValueProfiler.
type Options = core.Options

// ValueProfiler is the instruction value-profiling tool.
type ValueProfiler = core.ValueProfiler

// ConvergentConfig parameterizes intelligent sampling.
type ConvergentConfig = core.ConvergentConfig

// WeightedMetrics aggregates site metrics by execution weight.
type WeightedMetrics = core.WeightedMetrics

// NewTNV creates a Top-N-Value table.
func NewTNV(cfg TNVConfig) *TNVTable { return core.NewTNV(cfg) }

// DefaultTNVConfig is the paper's 10-entry, steady-top-half table.
func DefaultTNVConfig() TNVConfig { return core.DefaultTNVConfig() }

// DefaultOptions profiles all result-producing instructions.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultConvergentConfig is the baseline intelligent sampler.
func DefaultConvergentConfig() ConvergentConfig { return core.DefaultConvergentConfig() }

// NewValueProfiler creates the profiling tool.
func NewValueProfiler(opts Options) (*ValueProfiler, error) { return core.NewValueProfiler(opts) }

// ---- parallel profiling ----

// ParallelJob is one independent (workload, input, options) profiling
// run for the worker pool.
type ParallelJob = parallel.Job

// ParallelResult is one job's outcome: profile, run result, and any
// error, at the job's index.
type ParallelResult = parallel.Result

// ParallelBenchReport records one serial-vs-parallel timing of the
// suite profiling pass.
type ParallelBenchReport = parallel.BenchReport

// RunParallel executes independent profiling jobs on at most workers
// goroutines (≤ 0 selects GOMAXPROCS); results come back in job order
// and are byte-identical to a serial run.
func RunParallel(ctx context.Context, workers int, jobs []ParallelJob) []ParallelResult {
	return parallel.Run(ctx, workers, jobs)
}

// FirstParallelError returns the lowest-index job error, or nil.
func FirstParallelError(results []ParallelResult) error { return parallel.FirstError(results) }

// MergeShards folds shard profiles of the same program into one via
// Profile.Merge.
func MergeShards(results []ParallelResult) (*Profile, error) { return parallel.MergeShards(results) }

// BenchParallelSuite times the workload-suite profiling pass serially
// and on a workers-wide pool, verifying both produce identical
// profiles.
func BenchParallelSuite(ctx context.Context, workers int) (*ParallelBenchReport, error) {
	return parallel.BenchSuite(ctx, workers, runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

// ---- supervised (retrying, budgeted) profiling ----

// SupervisePolicy bounds and shapes a supervised job's attempts:
// retries, per-attempt deadlines and step budgets, total wall-clock
// budget, deterministic backoff, checkpoint resume, partial-profile
// salvage, and the failure circuit breaker.
type SupervisePolicy = supervise.Policy

// SupervisedJob is one supervised profiling run (program, input,
// options, control settings).
type SupervisedJob = supervise.Job

// SuperviseJobReport is one supervised job's outcome: final state,
// failure class, attempt/resume counts, and the profile when usable.
type SuperviseJobReport = supervise.JobReport

// SuperviseReport is the outcome of one supervised batch.
type SuperviseReport = supervise.Report

// SupervisedJobOf converts a pool job into a supervised one, compiling
// its workload up front.
func SupervisedJobOf(j ParallelJob) (SupervisedJob, error) { return supervise.JobOf(j) }

// RunSupervised executes jobs under policy on at most workers
// goroutines: failed attempts are classified and retried (resuming
// from checkpoints when possible), budgets enforced, and partial
// profiles salvaged per the policy. See docs/robustness.md.
func RunSupervised(ctx context.Context, workers int, jobs []SupervisedJob, policy SupervisePolicy) *SuperviseReport {
	return supervise.Run(ctx, workers, jobs, policy)
}

// SuperviseDoResult reports a generic supervised call's attempt count
// and final error.
type SuperviseDoResult = supervise.DoResult

// SuperviseDo retries an arbitrary function under the policy's
// attempt, backoff, and budget rules (the non-VM sibling of
// RunSupervised; vexp wraps whole experiments with it).
func SuperviseDo(ctx context.Context, policy SupervisePolicy, fn func(ctx context.Context, attempt int) error) SuperviseDoResult {
	return supervise.Do(ctx, policy, fn)
}

// ProfileRecord is the serialized (JSON) form of a profiling run.
type ProfileRecord = core.ProfileRecord

// MergeRecords combines two saved profile records of the same program.
func MergeRecords(a, b *ProfileRecord) (*ProfileRecord, error) {
	return core.MergeRecords(a, b)
}

// ---- profiled-entity extensions ----

// MemProfiler profiles memory locations.
type MemProfiler = memprof.MemProfiler

// NewMemProfiler creates a memory-location profiler.
func NewMemProfiler(opts memprof.Options) *MemProfiler { return memprof.New(opts) }

// ParamProfiler profiles procedure parameters.
type ParamProfiler = paramprof.ParamProfiler

// NewParamProfiler creates a parameter profiler.
func NewParamProfiler(opts paramprof.Options) *ParamProfiler { return paramprof.New(opts) }

// RegProfiler profiles values written to each architectural register.
type RegProfiler = regprof.Profiler

// NewRegProfiler creates a register-value profiler.
func NewRegProfiler(tnv TNVConfig, trackFull bool) *RegProfiler { return regprof.New(tnv, trackFull) }

// DepProfiler profiles store→load memory communication.
type DepProfiler = depprof.DepProfiler

// NewDepProfiler creates a memory-dependence profiler.
func NewDepProfiler(opts depprof.Options) *DepProfiler { return depprof.New(opts) }

// TrivProfiler profiles trivial arithmetic computations.
type TrivProfiler = trivprof.Profiler

// NewTrivProfiler creates a trivial-computation profiler.
func NewTrivProfiler() *TrivProfiler { return trivprof.New() }

// ProcProfiler attributes cycles to procedures.
type ProcProfiler = procprof.Profiler

// NewProcProfiler creates a procedure-time profiler.
func NewProcProfiler() *ProcProfiler { return procprof.New() }

// ---- traces ----

// TraceWriter records a value trace.
type TraceWriter = trace.Writer

// TraceReader replays a value trace.
type TraceReader = trace.Reader

// NewTraceWriter starts a trace on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// NewTraceReader opens a recorded trace.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// Inst is one decoded VRISC instruction.
type Inst = isa.Inst

// NewTraceCollector returns a Tool recording the value stream of the
// selected instructions (nil filter = all result-producing).
func NewTraceCollector(w *TraceWriter, filter func(Inst) bool) Tool {
	return trace.NewCollector(w, filter)
}

// ---- uses of the profile ----

// SpecializeInfo reports what code specialization accomplished.
type SpecializeInfo = specialize.Info

// Specialize clones prog with a guarded, constant-folded version of the
// named procedure under the assumption reg == value at entry.
func Specialize(prog *Program, procName string, reg uint8, value int64) (*Program, *SpecializeInfo, error) {
	return specialize.Specialize(prog, procName, reg, value)
}

// SpecializeMultiInfo reports a multi-value specialization.
type SpecializeMultiInfo = specialize.MultiInfo

// SpecializeMulti installs one specialized body per top value with a
// guard chain (the TNV table's top-N values as a multi-way dispatch).
func SpecializeMulti(prog *Program, procName string, reg uint8, values []int64) (*Program, *SpecializeMultiInfo, error) {
	return specialize.SpecializeMulti(prog, procName, reg, values)
}

// Predictor is a value predictor (last-value, stride, 2-level, hybrid).
type Predictor = vpred.Predictor

// PredictorSuite returns the standard five-predictor comparison set.
func PredictorSuite(logSize int) []Predictor { return vpred.StandardSuite(logSize) }

// ---- differential testing ----

// GenConfig seeds the deterministic VRISC program generator.
type GenConfig = progen.Config

// GenSpec is a generated program's abstract form: shrinkable, and
// buildable into a verified Program.
type GenSpec = progen.Spec

// Generate builds a random but always-verifiable program spec from a
// seed; the same seed yields the same spec on every Go release.
func Generate(cfg GenConfig) GenSpec { return progen.Generate(cfg) }

// BuildSpec assembles a generated spec into an executable Program.
func BuildSpec(spec *GenSpec) (*Program, error) { return progen.Build(spec) }

// InputForSpec derives a deterministic input vector for a generated
// spec (variant selects among distinct inputs).
func InputForSpec(spec *GenSpec, variant uint64) []int64 { return progen.InputFor(spec, variant) }

// DiffOptions configures the metamorphic differential-testing harness.
type DiffOptions = difftest.Options

// DiffReport is one program's harness verdict; Failed reports whether
// any property diverged from the naive reference oracle.
type DiffReport = difftest.Report

// DiffCheck runs every metamorphic property of the optimized profiler
// against the naive reference oracle on one program (see
// docs/difftest.md).
func DiffCheck(p *Program, name string, input, input2 []int64, opts DiffOptions) *DiffReport {
	return difftest.Check(p, name, input, input2, opts)
}

// ---- workloads and experiments ----

// Workload is one benchmark program with test/train inputs.
type Workload = workloads.Workload

// Workloads returns the benchmark suite.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName returns one benchmark.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Experiment regenerates one of the paper's exhibits.
type Experiment = experiments.Experiment

// ExperimentConfig selects workloads and sweep depth.
type ExperimentConfig = experiments.Config

// ExperimentResult is a rendered exhibit with its shape checks.
type ExperimentResult = experiments.Result

// Experiments returns all registered experiments (e1–e13).
func Experiments() []*Experiment { return experiments.All() }

// ExperimentByID returns one experiment.
func ExperimentByID(id string) (*Experiment, error) { return experiments.ByID(id) }
